#include "ml/knn.h"

#include <cstddef>

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fairclean {

Status KnnClassifier::Fit(const Matrix& x, const std::vector<int>& y,
                          Rng* rng) {
  (void)rng;
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  train_x_ = x;
  train_y_ = y;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> KnnClassifier::PredictProba(const Matrix& x) const {
  FC_CHECK_MSG(fitted_, "PredictProba before Fit");
  FC_CHECK_EQ(x.cols(), train_x_.cols());
  size_t n_train = train_x_.rows();
  size_t k = std::min(static_cast<size_t>(options_.k), n_train);
  size_t d = x.cols();

  std::vector<double> out(x.rows());
  std::vector<std::pair<double, size_t>> dist(n_train);
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* query = x.Row(i);
    for (size_t t = 0; t < n_train; ++t) {
      const double* row = train_x_.Row(t);
      double sq = 0.0;
      for (size_t j = 0; j < d; ++j) {
        double diff = query[j] - row[j];
        sq += diff * diff;
      }
      dist[t] = {sq, t};
    }
    std::partial_sort(dist.begin(),
                      dist.begin() + static_cast<ptrdiff_t>(k), dist.end());
    int positives = 0;
    for (size_t j = 0; j < k; ++j) positives += train_y_[dist[j].second];
    out[i] = static_cast<double>(positives) / static_cast<double>(k);
  }
  return out;
}

}  // namespace fairclean
