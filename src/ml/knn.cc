#include "ml/knn.h"

#include <cstddef>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "ml/linalg.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

namespace {

// Queries handled per task: large enough to amortize the blocked kernel's
// tile transposes and the task dispatch, small enough to fan out modest
// validation folds. Block boundaries never affect results — every query
// writes only its own output slot.
constexpr size_t kQueryBlock = 64;

// Bounded selection: one pass keeping the k smallest (dist, index) pairs in
// an insertion-sorted buffer. The comparison is the same lexicographic
// (dist, index) order a partial_sort over all pairs would use — the
// ascending-t scan means an equal-distance newcomer always loses to a kept
// entry — so the selected set is identical, without ever materializing an
// n-sized pair array. `best` must have size k <= n_train; on return
// best[0..k) holds the neighbors in ascending (dist, index) order.
void SelectNearest(const double* sq_row, size_t n_train, size_t k,
                   std::vector<std::pair<double, size_t>>* best) {
  size_t filled = 0;
  for (size_t t = 0; t < n_train; ++t) {
    double dv = sq_row[t];
    if (filled == k) {
      if (dv >= (*best)[k - 1].first) continue;
    } else {
      ++filled;
    }
    size_t pos = filled - 1;
    while (pos > 0 && dv < (*best)[pos - 1].first) {
      (*best)[pos] = (*best)[pos - 1];
      --pos;
    }
    (*best)[pos] = {dv, t};
  }
}

}  // namespace

Status KnnClassifier::Fit(const Matrix& x, const std::vector<int>& y,
                          Rng* rng) {
  (void)rng;
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("feature/label size mismatch");
  }
  if (x.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.k <= 0) {
    return Status::InvalidArgument("k must be positive");
  }
  train_x_ = x;
  train_y_ = y;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> KnnClassifier::PredictProba(const Matrix& x) const {
  FC_CHECK_MSG(fitted_, "PredictProba before Fit");
  FC_CHECK_EQ(x.cols(), train_x_.cols());
  obs::TraceSpan span("ml", "knn predict");
  static obs::Counter* const distance_pairs =
      obs::MetricsRegistry::Global().GetCounter("ml.knn.distance_pairs");
  size_t n_train = train_x_.rows();
  size_t k = std::min(static_cast<size_t>(options_.k), n_train);
  size_t n_queries = x.rows();
  distance_pairs->Increment(static_cast<uint64_t>(n_queries) * n_train);

  std::vector<double> out(n_queries);
  if (!options_.blocked) {
    // Naive-mode reference path: one distance row per query, sequential.
    // Bit-identical to the blocked kernel below (pinned by the
    // kernel-identity tests) — it only forgoes the batching.
    std::vector<double> sq(n_train);
    std::vector<std::pair<double, size_t>> best(k);
    for (size_t q = 0; q < n_queries; ++q) {
      SquaredDistancesToRow(train_x_, x.Row(q), sq.data());
      SelectNearest(sq.data(), n_train, k, &best);
      int positives = 0;
      for (size_t j = 0; j < k; ++j) positives += train_y_[best[j].second];
      out[q] = static_cast<double>(positives) / static_cast<double>(k);
    }
    return out;
  }
  size_t num_blocks = (n_queries + kQueryBlock - 1) / kQueryBlock;
  // Fused mode packs the train panels once per call and shares them across
  // every query block; otherwise each block re-packs (the pre-fused
  // behavior). The packing is pure data movement, so both paths produce
  // the same bits.
  PackedPanels packed;
  if (options_.packed_reuse) PackTrainPanels(train_x_, &packed);
  ThreadPool* pool = ThreadPool::SharedForFolds();
  RunIndexed(pool, num_blocks, [&](size_t block) -> int {
    size_t begin = block * kQueryBlock;
    size_t end = std::min(begin + kQueryBlock, n_queries);
    // Per-task scratch, reused across every query of the block (hoisted
    // out of the per-query loop).
    std::vector<double> sq((end - begin) * n_train);
    std::vector<std::pair<double, size_t>> best(k);
    if (options_.packed_reuse) {
      BlockedSquaredDistancesPacked(x, begin, end, train_x_, packed,
                                    sq.data());
    } else {
      BlockedSquaredDistances(x, begin, end, train_x_, sq.data());
    }
    for (size_t q = begin; q < end; ++q) {
      const double* sq_row = sq.data() + (q - begin) * n_train;
      SelectNearest(sq_row, n_train, k, &best);
      int positives = 0;
      for (size_t j = 0; j < k; ++j) positives += train_y_[best[j].second];
      // Slot-ordered write: each query owns out[q], so the block fan-out
      // cannot reorder or race results.
      out[q] = static_cast<double>(positives) / static_cast<double>(k);
    }
    return 0;
  });
  return out;
}

std::vector<double> KnnGridAccuracies(const Matrix& train_x,
                                      const std::vector<int>& train_y,
                                      const Matrix& valid_x,
                                      const std::vector<int>& valid_y,
                                      const std::vector<int>& ks) {
  FC_CHECK_EQ(train_x.rows(), train_y.size());
  FC_CHECK_MSG(train_x.rows() > 0, "empty training set");
  FC_CHECK_EQ(valid_x.cols(), train_x.cols());
  FC_CHECK_EQ(valid_x.rows(), valid_y.size());
  obs::TraceSpan span("ml", "knn grid eval");
  static obs::Counter* const distance_pairs =
      obs::MetricsRegistry::Global().GetCounter("ml.knn.distance_pairs");
  size_t n_train = train_x.rows();
  size_t n_queries = valid_x.rows();
  distance_pairs->Increment(static_cast<uint64_t>(n_queries) * n_train);
  size_t kmax = 0;
  for (int k : ks) {
    FC_CHECK_MSG(k > 0, "k must be positive");
    kmax = std::max(kmax, static_cast<size_t>(k));
  }
  size_t kmax_eff = std::min(kmax, n_train);

  // One top-kmax selection per query answers the whole grid: the
  // insertion buffer for any smaller k is the exact prefix of the kmax
  // buffer, so per-k positives are prefix sums. Per-block hit counts are
  // integers, so the cross-block merge is order-independent.
  size_t num_blocks = (n_queries + kQueryBlock - 1) / kQueryBlock;
  std::vector<std::vector<size_t>> block_correct(
      num_blocks, std::vector<size_t>(ks.size(), 0));
  PackedPanels packed;
  PackTrainPanels(train_x, &packed);
  ThreadPool* pool = ThreadPool::SharedForFolds();
  RunIndexed(pool, num_blocks, [&](size_t block) -> int {
    size_t begin = block * kQueryBlock;
    size_t end = std::min(begin + kQueryBlock, n_queries);
    std::vector<double> sq((end - begin) * n_train);
    std::vector<std::pair<double, size_t>> best(kmax_eff);
    std::vector<int> prefix_positives(kmax_eff + 1, 0);
    BlockedSquaredDistancesPacked(valid_x, begin, end, train_x, packed,
                                  sq.data());
    for (size_t q = begin; q < end; ++q) {
      const double* sq_row = sq.data() + (q - begin) * n_train;
      SelectNearest(sq_row, n_train, kmax_eff, &best);
      for (size_t j = 0; j < kmax_eff; ++j) {
        prefix_positives[j + 1] =
            prefix_positives[j] + train_y[best[j].second];
      }
      for (size_t i = 0; i < ks.size(); ++i) {
        size_t k_eff = std::min(static_cast<size_t>(ks[i]), n_train);
        double proba = static_cast<double>(prefix_positives[k_eff]) /
                       static_cast<double>(k_eff);
        int pred = proba >= 0.5 ? 1 : 0;
        if (pred == valid_y[q]) ++block_correct[block][i];
      }
    }
    return 0;
  });
  std::vector<double> accuracies(ks.size(), 0.0);
  if (n_queries == 0) return accuracies;
  for (size_t i = 0; i < ks.size(); ++i) {
    size_t correct = 0;
    for (size_t block = 0; block < num_blocks; ++block) {
      correct += block_correct[block][i];
    }
    accuracies[i] = static_cast<double>(correct) /
                    static_cast<double>(n_queries);
  }
  return accuracies;
}

}  // namespace fairclean
