#include "store/page_cache.h"

namespace fairclean {
namespace store {

PageCache::PageCache(size_t capacity)
    : capacity_(capacity),
      hits_counter_(
          obs::MetricsRegistry::Global().GetCounter("store.cache_hits")),
      misses_counter_(
          obs::MetricsRegistry::Global().GetCounter("store.cache_misses")),
      evicted_counter_(
          obs::MetricsRegistry::Global().GetCounter("store.pages_evicted")),
      hit_ratio_gauge_(
          obs::MetricsRegistry::Global().GetGauge("store.cache_hit_ratio")) {}

void PageCache::RecordLookup(bool hit) {
  if (hit) {
    ++hit_count_;
    hits_counter_->Increment();
  } else {
    ++miss_count_;
    misses_counter_->Increment();
  }
  hit_ratio_gauge_->Set(static_cast<double>(hit_count_) /
                        static_cast<double>(hit_count_ + miss_count_));
  // Windowed twin: each lookup observes 1 (hit) or 0 (miss), so the
  // scrape's sum/count is the hit ratio over the last window only —
  // the lifetime gauge above goes inert once the process warms up.
  static obs::SlidingWindowHistogram* const window =
      obs::MetricsRegistry::Global().GetWindowHistogram(
          "store.window.cache_hits", {0.5});
  window->Observe(hit ? 1.0 : 0.0);
}

std::optional<Page> PageCache::Get(uint64_t page_id) {
  auto it = entries_.find(page_id);
  if (it == entries_.end()) {
    RecordLookup(false);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  RecordLookup(true);
  return it->second->second;
}

void PageCache::Put(uint64_t page_id, Page page) {
  if (capacity_ == 0) return;
  auto it = entries_.find(page_id);
  if (it != entries_.end()) {
    it->second->second = std::move(page);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(page_id, std::move(page));
  entries_[page_id] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++eviction_count_;
    evicted_counter_->Increment();
  }
}

void PageCache::Erase(uint64_t page_id) {
  auto it = entries_.find(page_id);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void PageCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace store
}  // namespace fairclean
