#ifndef FAIRCLEAN_STORE_PAGE_CACHE_H_
#define FAIRCLEAN_STORE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "store/page.h"

namespace fairclean {
namespace store {

/// Bounded LRU cache of decoded pages, keyed by page id. Bounds the
/// store's RSS: without it every B-tree descent and data-chain walk would
/// either re-read from disk or grow an unbounded map.
///
/// Get bumps the entry to most-recently-used; Put inserts (or refreshes)
/// and evicts the least-recently-used entry past `capacity`. Not
/// internally synchronized — PagedStore serializes access under its mutex.
///
/// Instruments (global metrics registry): "store.pages_evicted",
/// "store.cache_hits", "store.cache_misses", and the
/// "store.cache_hit_ratio" gauge (hits / lookups so far).
class PageCache {
 public:
  /// `capacity` == 0 disables caching entirely (every Get misses).
  explicit PageCache(size_t capacity);

  /// The cached page, bumped to MRU; nullopt on miss.
  std::optional<Page> Get(uint64_t page_id);

  /// Inserts or refreshes; evicts LRU entries beyond capacity.
  void Put(uint64_t page_id, Page page);

  void Erase(uint64_t page_id);

  /// Drops everything (transaction rollback: pages written by the failed
  /// transaction must not be served from memory).
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hit_count_; }
  uint64_t misses() const { return miss_count_; }
  uint64_t evictions() const { return eviction_count_; }

 private:
  void RecordLookup(bool hit);

  size_t capacity_;
  /// MRU at front; pairs of (page id, page).
  std::list<std::pair<uint64_t, Page>> lru_;
  std::unordered_map<uint64_t,
                     std::list<std::pair<uint64_t, Page>>::iterator>
      entries_;
  uint64_t hit_count_ = 0;
  uint64_t miss_count_ = 0;
  uint64_t eviction_count_ = 0;
  obs::Counter* hits_counter_;
  obs::Counter* misses_counter_;
  obs::Counter* evicted_counter_;
  obs::Gauge* hit_ratio_gauge_;
};

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_PAGE_CACHE_H_
