#include "store/blob_store.h"

#include <filesystem>
#include <system_error>
#include <utility>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "common/strings.h"

namespace fairclean {
namespace store {

// ---------------------------------------------------------------------------
// FlatFileStore

FlatFileStore::FlatFileStore(std::string dir) : dir_(std::move(dir)) {}

std::string FlatFileStore::Describe(const std::string& key) const {
  return dir_ + "/" + key;
}

Status FlatFileStore::Write(const std::string& key,
                            const std::string& bytes) {
  // WriteFileAtomic probes the "cache_write" site itself.
  return WriteFileAtomic(Describe(key), bytes);
}

Result<std::string> FlatFileStore::Read(const std::string& key) {
  const std::string path = Describe(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return Status::NotFound("store has no record \"" + key + "\"");
  }
  return ReadFileToString(path);
}

Status FlatFileStore::Remove(const std::string& key) {
  std::error_code ec;
  std::filesystem::remove(Describe(key), ec);
  if (ec) {
    return Status::IoError("removing " + Describe(key) + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<bool> FlatFileStore::Contains(const std::string& key) {
  std::error_code ec;
  return std::filesystem::exists(Describe(key), ec);
}

Result<std::string> FlatFileStore::Quarantine(const std::string& key) {
  return QuarantineFile(Describe(key));
}

// ---------------------------------------------------------------------------
// PagedBlobStore

constexpr char PagedBlobStore::kPagesFileName[];

PagedBlobStore::PagedBlobStore(std::string dir,
                               std::unique_ptr<PagedStore> store)
    : dir_(std::move(dir)),
      store_(std::move(store)),
      migrated_keys_(
          obs::MetricsRegistry::Global().GetCounter("store.migrated_keys")) {}

Result<std::shared_ptr<PagedBlobStore>> PagedBlobStore::Open(
    const std::string& dir, const PagedStoreOptions& options) {
  FC_ASSIGN_OR_RETURN(
      std::unique_ptr<PagedStore> store,
      PagedStore::Open(dir + "/" + kPagesFileName, options));
  return std::shared_ptr<PagedBlobStore>(
      new PagedBlobStore(dir, std::move(store)));
}

std::string PagedBlobStore::FlatPath(const std::string& key) const {
  return dir_ + "/" + key;
}

std::string PagedBlobStore::Describe(const std::string& key) const {
  return store_->path() + "::" + key;
}

Status PagedBlobStore::Write(const std::string& key,
                             const std::string& bytes) {
  // Probe parity with WriteFileAtomic's "cache_write" site.
  FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("cache_write"));
  return store_->Put(key, bytes);
}

Result<std::string> PagedBlobStore::Read(const std::string& key) {
  Result<std::string> value = store_->Get(key);
  if (value.ok() || value.status().code() != StatusCode::kNotFound) {
    return value;
  }
  // Lazy flat-to-paged migration: absorb a pre-existing flat cache file.
  const std::string flat_path = FlatPath(key);
  std::error_code ec;
  if (!std::filesystem::exists(flat_path, ec)) {
    return value.status();
  }
  FC_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(flat_path));
  FC_RETURN_IF_ERROR(store_->Put(key, bytes));
  migrated_keys_->Increment();
  return bytes;
}

Status PagedBlobStore::Remove(const std::string& key) {
  Status status = store_->Delete(key);
  if (status.code() == StatusCode::kNotFound) return Status::OK();
  return status;
}

Result<bool> PagedBlobStore::Contains(const std::string& key) {
  FC_ASSIGN_OR_RETURN(bool in_store, store_->Contains(key));
  if (in_store) return true;
  std::error_code ec;
  return std::filesystem::exists(FlatPath(key), ec);
}

Result<std::string> PagedBlobStore::Quarantine(const std::string& key) {
  std::string target = key + ".corrupt";
  for (int n = 1;; ++n) {
    FC_ASSIGN_OR_RETURN(bool taken, store_->Contains(target));
    if (!taken) break;
    target = StrFormat("%s.corrupt.%d", key.c_str(), n);
  }
  FC_RETURN_IF_ERROR(store_->Rename(key, target));
  return target;
}

// ---------------------------------------------------------------------------
// Factories

Result<std::shared_ptr<BlobStore>> OpenBlobStore(const std::string& dir,
                                                 const std::string& backend,
                                                 size_t cache_pages,
                                                 bool compress) {
  if (backend == "flat") {
    return std::shared_ptr<BlobStore>(new FlatFileStore(dir));
  }
  if (backend == "paged") {
    PagedStoreOptions options;
    options.cache_pages = cache_pages;
    options.compress = compress;
    FC_ASSIGN_OR_RETURN(std::shared_ptr<PagedBlobStore> paged,
                        PagedBlobStore::Open(dir, options));
    return std::shared_ptr<BlobStore>(std::move(paged));
  }
  return Status::InvalidArgument("FAIRCLEAN_STORE must be \"flat\" or "
                                 "\"paged\", got \"" +
                                 backend + "\"");
}

Result<std::shared_ptr<BlobStore>> OpenBlobStoreFromEnv(
    const std::string& dir) {
  std::string backend = GetEnvString("FAIRCLEAN_STORE", "flat");
  FC_ASSIGN_OR_RETURN(int64_t cache_pages,
                      GetEnvCount("FAIRCLEAN_STORE_CACHE_PAGES", 256));
  std::string compress_raw = GetEnvString("FAIRCLEAN_STORE_COMPRESS", "0");
  if (compress_raw != "0" && compress_raw != "1") {
    return Status::InvalidArgument(
        "FAIRCLEAN_STORE_COMPRESS must be \"0\" or \"1\", got \"" +
        compress_raw + "\"");
  }
  return OpenBlobStore(dir, backend, static_cast<size_t>(cache_pages),
                       compress_raw == "1");
}

}  // namespace store
}  // namespace fairclean
