#ifndef FAIRCLEAN_STORE_PAGER_H_
#define FAIRCLEAN_STORE_PAGER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "store/page.h"

namespace fairclean {
namespace store {

/// Raw page IO over one store file: pread/pwrite of kPageSize units with
/// CRC verification on read and a page-id echo check against misdirected
/// writes. Probes the "page_read"/"page_write" fault-injection sites, so
/// chaos tests can tear an individual page flush the way kill -9 would.
///
/// Error taxonomy (PagedStore's recovery depends on it):
///   - IoError: the syscall failed or an injected fault fired — the page's
///     on-disk state is unknown; callers retry or roll back.
///   - InvalidArgument: the page was read but is not trustworthy (short
///     read at EOF, CRC mismatch, wrong id echo) — a torn or stale page;
///     meta recovery falls back to the other slot on this.
///
/// Not internally synchronized: PagedStore serializes all access under its
/// own mutex. Counters "store.pages_read"/"store.pages_written" land in
/// the global metrics registry.
class Pager {
 public:
  /// Opens (creating if absent) the store file. The file grows lazily as
  /// pages beyond the current end are written.
  static Result<std::unique_ptr<Pager>> Open(const std::string& path);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Reads and verifies one page.
  Result<Page> Read(uint64_t page_id);

  /// Serializes and writes one page at page.page_id.
  Status Write(const Page& page);

  /// Flushes written pages to stable storage (fdatasync).
  Status Sync();

  /// Pages the file currently holds (file size / kPageSize, rounding a
  /// torn partial tail page up so it stays addressable for inspection).
  uint64_t PageCount() const { return page_count_; }

  const std::string& path() const { return path_; }

 private:
  Pager(std::string path, int fd, uint64_t page_count);

  std::string path_;
  int fd_;
  uint64_t page_count_;
  obs::Counter* pages_read_;
  obs::Counter* pages_written_;
};

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_PAGER_H_
