#ifndef FAIRCLEAN_STORE_BTREE_H_
#define FAIRCLEAN_STORE_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "store/page.h"

namespace fairclean {
namespace store {

/// Longest key the index accepts. Store keys are cache-file basenames
/// (tens of bytes); the bound guarantees a node split always makes
/// progress (any two entries fit one page).
constexpr size_t kMaxKeyLen = 512;

/// Page IO the B-tree runs against. PagedStore implements it with
/// copy-on-write semantics: WriteNode always allocates a fresh page and
/// FreeNode defers the old one to the pending free list, so an in-flight
/// transaction never touches a page the last committed tree references.
/// A trivial in-memory implementation makes the tree unit-testable without
/// a file.
class NodeIo {
 public:
  virtual ~NodeIo() = default;
  /// A previously written kIndex page.
  virtual Result<Page> ReadNode(uint64_t page_id) = 0;
  /// Writes `payload` as a fresh kIndex page and returns its id.
  virtual Result<uint64_t> WriteNode(const std::string& payload) = 0;
  /// Releases a superseded node page.
  virtual void FreeNode(uint64_t page_id) = 0;
};

/// The functions below implement a copy-on-write B-tree mapping string
/// keys to u64 values (data-chain head page ids). A tree is identified by
/// its root page id; 0 means the empty tree (page 0 is a meta slot, so the
/// sentinel can never collide with a real node). Mutations return the NEW
/// root — the old tree remains intact and readable, which is what makes
/// the dual-meta commit protocol crash-safe.
///
/// Node payload layout (little-endian):
///   u8  is_leaf
///   u16 entry count n
///   leaf:     n x (u16 key_len, key bytes, u64 value)
///   internal: u64 child0, then n x (u16 key_len, key bytes, u64 child)
/// Internal separator semantics: child0 holds keys < key[0]; child[i]
/// holds keys in [key[i], key[i+1]).

/// The value stored under `key`, or nullopt.
Result<std::optional<uint64_t>> BTreeLookup(NodeIo& io, uint64_t root,
                                            std::string_view key);

/// Inserts or replaces `key` -> `value`; returns the new root.
Result<uint64_t> BTreeInsert(NodeIo& io, uint64_t root, std::string_view key,
                             uint64_t value);

struct BTreeDeleteOutcome {
  uint64_t root = 0;   ///< new root (may equal the old one if not found)
  bool found = false;  ///< whether the key existed
};

/// Removes `key` if present. Simple structural delete: emptied leaves are
/// unlinked from their parent and an internal node left with only child0
/// collapses into that child; no rebalancing (deletes are rare — journal
/// retirement and quarantine renames).
Result<BTreeDeleteOutcome> BTreeDelete(NodeIo& io, uint64_t root,
                                       std::string_view key);

/// In-order traversal; `fn`'s first non-OK status stops the walk and is
/// returned.
Status BTreeIterate(
    NodeIo& io, uint64_t root,
    const std::function<Status(std::string_view key, uint64_t value)>& fn);

/// Appends every node page id of the tree (integrity walks).
Status BTreeCollectPages(NodeIo& io, uint64_t root,
                         std::vector<uint64_t>* pages);

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_BTREE_H_
