#ifndef FAIRCLEAN_STORE_BLOB_STORE_H_
#define FAIRCLEAN_STORE_BLOB_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/paged_store.h"

namespace fairclean {
namespace store {

/// Backend-neutral artifact byte store. Keys are cache-file basenames
/// (e.g. "adult_outliers_LR_s7_n3_r2_f0.json" or its ".journal" sibling);
/// values are the exact bytes the flat-file cache would hold, checksum
/// footer included. The store never interprets the bytes — footers stay
/// the caller's concern — so sha256 fingerprints of record bytes are
/// identical across backends.
///
/// Fault-probe parity with the flat path: Write probes the "cache_write"
/// site on every backend (the flat backend inherits it from
/// WriteFileAtomic; the paged backend probes it explicitly). Read is
/// unprobed — callers that need a "cache_read" probe (the driver's journal
/// load) arm it themselves, matching the historical split where cache
/// loads were never probed but journal reads were.
class BlobStore {
 public:
  virtual ~BlobStore() = default;

  /// Stores `bytes` under `key`, replacing any previous value. Subject to
  /// the "cache_write" fault-injection site.
  virtual Status Write(const std::string& key, const std::string& bytes) = 0;

  /// The exact bytes last written under `key`. NotFound when absent.
  virtual Result<std::string> Read(const std::string& key) = 0;

  /// Removes `key`. Idempotent: OK when already absent.
  virtual Status Remove(const std::string& key) = 0;

  virtual Result<bool> Contains(const std::string& key) = 0;

  /// Moves a damaged record aside under a unique quarantine key
  /// ("<key>.corrupt", then "<key>.corrupt.1", ...) so recomputation never
  /// destroys the evidence. Returns the quarantine key (flat backend: the
  /// quarantine path). NotFound when `key` is absent.
  virtual Result<std::string> Quarantine(const std::string& key) = 0;

  /// Human-readable location of `key` for error messages (flat: the file
  /// path; paged: "<pages file>::<key>").
  virtual std::string Describe(const std::string& key) const = 0;

  /// "flat" or "paged".
  virtual const char* backend() const = 0;
};

/// One file per key under a cache directory — the original cache layout.
class FlatFileStore : public BlobStore {
 public:
  explicit FlatFileStore(std::string dir);

  Status Write(const std::string& key, const std::string& bytes) override;
  Result<std::string> Read(const std::string& key) override;
  Status Remove(const std::string& key) override;
  Result<bool> Contains(const std::string& key) override;
  Result<std::string> Quarantine(const std::string& key) override;
  std::string Describe(const std::string& key) const override;
  const char* backend() const override { return "flat"; }

 private:
  std::string dir_;
};

/// All keys in one PagedStore file (`<dir>/fairclean.pages`), with lazy
/// migration: a key missing from the pages file but present as a flat file
/// in the same directory is absorbed into the store on first Read (the
/// flat original is left untouched as a fallback copy). Migrations are
/// counted on "store.migrated_keys".
class PagedBlobStore : public BlobStore {
 public:
  /// Opens (creating if needed) the pages file under `dir`, which must
  /// already exist as a directory.
  static Result<std::shared_ptr<PagedBlobStore>> Open(
      const std::string& dir, const PagedStoreOptions& options);

  Status Write(const std::string& key, const std::string& bytes) override;
  Result<std::string> Read(const std::string& key) override;
  Status Remove(const std::string& key) override;
  Result<bool> Contains(const std::string& key) override;
  Result<std::string> Quarantine(const std::string& key) override;
  std::string Describe(const std::string& key) const override;
  const char* backend() const override { return "paged"; }

  PagedStore& paged_store() { return *store_; }

  /// Basename of the single backing file inside the cache directory.
  static constexpr char kPagesFileName[] = "fairclean.pages";

 private:
  PagedBlobStore(std::string dir, std::unique_ptr<PagedStore> store);

  std::string FlatPath(const std::string& key) const;

  std::string dir_;
  std::unique_ptr<PagedStore> store_;
  obs::Counter* migrated_keys_;
};

/// Opens the backend selected by name: "flat" or "paged" (anything else is
/// InvalidArgument). `cache_pages` / `compress` only apply to "paged".
Result<std::shared_ptr<BlobStore>> OpenBlobStore(const std::string& dir,
                                                 const std::string& backend,
                                                 size_t cache_pages,
                                                 bool compress);

/// Opens the backend selected by the environment:
///   FAIRCLEAN_STORE             "flat" (default) | "paged"
///   FAIRCLEAN_STORE_CACHE_PAGES page-cache capacity (default 256)
///   FAIRCLEAN_STORE_COMPRESS    "0" (default) | "1"
/// Malformed knobs are a hard InvalidArgument, matching the suite's strict
/// env parsing.
Result<std::shared_ptr<BlobStore>> OpenBlobStoreFromEnv(
    const std::string& dir);

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_BLOB_STORE_H_
