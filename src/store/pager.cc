#include "store/pager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/strings.h"

namespace fairclean {
namespace store {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Pager::Pager(std::string path, int fd, uint64_t page_count)
    : path_(std::move(path)),
      fd_(fd),
      page_count_(page_count),
      pages_read_(
          obs::MetricsRegistry::Global().GetCounter("store.pages_read")),
      pages_written_(
          obs::MetricsRegistry::Global().GetCounter("store.pages_written")) {}

Pager::~Pager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open store file", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IoError(ErrnoMessage("fstat failed", path));
    ::close(fd);
    return status;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  uint64_t page_count = (size + kPageSize - 1) / kPageSize;
  return std::unique_ptr<Pager>(new Pager(path, fd, page_count));
}

Result<Page> Pager::Read(uint64_t page_id) {
  FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("page_read"));
  std::string buffer(kPageSize, '\0');
  size_t got = 0;
  while (got < kPageSize) {
    ssize_t n = ::pread(fd_, &buffer[got], kPageSize - got,
                        static_cast<off_t>(page_id * kPageSize + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage(
          StrFormat("pread of page %llu failed in",
                    static_cast<unsigned long long>(page_id)),
          path_));
    }
    if (n == 0) break;  // EOF: short read, reported by DecodePage
    got += static_cast<size_t>(n);
  }
  pages_read_->Increment();
  // Windowed rate twin: count / window_s on a scrape is live pages/sec.
  static obs::SlidingWindowHistogram* const window =
      obs::MetricsRegistry::Global().GetWindowHistogram(
          "store.window.pages_read", {1.0});
  window->Observe(1.0);
  return DecodePage(std::string_view(buffer).substr(0, got), page_id);
}

Status Pager::Write(const Page& page) {
  FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("page_write"));
  std::string bytes = EncodePage(page);
  size_t written = 0;
  while (written < kPageSize) {
    ssize_t n =
        ::pwrite(fd_, bytes.data() + written, kPageSize - written,
                 static_cast<off_t>(page.page_id * kPageSize + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage(
          StrFormat("pwrite of page %llu failed in",
                    static_cast<unsigned long long>(page.page_id)),
          path_));
    }
    written += static_cast<size_t>(n);
  }
  if (page.page_id >= page_count_) page_count_ = page.page_id + 1;
  pages_written_->Increment();
  static obs::SlidingWindowHistogram* const window =
      obs::MetricsRegistry::Global().GetWindowHistogram(
          "store.window.pages_written", {1.0});
  window->Observe(1.0);
  return Status::OK();
}

Status Pager::Sync() {
#if defined(__APPLE__)
  if (::fsync(fd_) != 0) {
#else
  if (::fdatasync(fd_) != 0) {
#endif
    return Status::IoError(ErrnoMessage("fdatasync failed", path_));
  }
  return Status::OK();
}

}  // namespace store
}  // namespace fairclean
