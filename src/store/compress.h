#ifndef FAIRCLEAN_STORE_COMPRESS_H_
#define FAIRCLEAN_STORE_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace fairclean {
namespace store {

/// Deterministic LZSS byte compressor for store pages. Self-contained (no
/// external codec dependency): 4 KiB sliding window, 3-byte minimum match,
/// greedy longest-match via a rolling 3-byte hash. The exact output bytes
/// are a pure function of the input, which keeps compressed stores
/// reproducible across runs and platforms.
///
/// Format: groups of up to 8 items, each group led by a flag byte (bit i
/// set = item i is a literal byte; clear = a 2-byte match token). A match
/// token packs a 12-bit backward distance (1-based) and a 4-bit length
/// (kMinMatch..kMinMatch+15).
std::string LzssCompress(std::string_view raw);

/// Inverse of LzssCompress. `raw_size` is the expected decompressed size
/// (recorded alongside the payload); a mismatch or malformed stream is
/// InvalidArgument, never a crash — torn pages must fail loudly.
Result<std::string> LzssDecompress(std::string_view compressed,
                                   size_t raw_size);

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_COMPRESS_H_
