#include "store/btree.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"

namespace fairclean {
namespace store {

namespace {

// Decoded node. For a leaf, values[i] is the data value of keys[i]. For an
// internal node, values has keys.size() + 1 child page ids with values[0]
// the leftmost child.
struct Node {
  bool is_leaf = true;
  std::vector<std::string> keys;
  std::vector<uint64_t> values;
};

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

size_t EntryBytes(const std::string& key) { return 2 + key.size() + 8; }

size_t NodeBytes(const Node& node) {
  size_t total = 3 + (node.is_leaf ? 0 : 8);
  for (const std::string& key : node.keys) total += EntryBytes(key);
  return total;
}

std::string EncodeNode(const Node& node) {
  std::string out;
  out.reserve(NodeBytes(node));
  out.push_back(node.is_leaf ? '\1' : '\0');
  AppendU16(&out, static_cast<uint16_t>(node.keys.size()));
  size_t value_at = 0;
  if (!node.is_leaf) AppendU64(&out, node.values[value_at++]);
  for (size_t i = 0; i < node.keys.size(); ++i) {
    AppendU16(&out, static_cast<uint16_t>(node.keys[i].size()));
    out += node.keys[i];
    AppendU64(&out, node.values[value_at++]);
  }
  return out;
}

Result<Node> DecodeNode(const Page& page, uint64_t page_id) {
  auto corrupt = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("corrupt index node at page %llu: %s",
                  static_cast<unsigned long long>(page_id), what));
  };
  if (page.type != PageType::kIndex) return corrupt("not an index page");
  const std::string& in = page.payload;
  size_t pos = 0;
  auto read_u16 = [&](uint16_t* v) {
    if (pos + 2 > in.size()) return false;
    *v = static_cast<uint16_t>(
        static_cast<unsigned char>(in[pos]) |
        (static_cast<unsigned char>(in[pos + 1]) << 8));
    pos += 2;
    return true;
  };
  auto read_u64 = [&](uint64_t* v) {
    if (pos + 8 > in.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(in[pos + i]))
            << (8 * i);
    }
    pos += 8;
    return true;
  };
  if (in.empty()) return corrupt("empty payload");
  Node node;
  node.is_leaf = in[pos++] != '\0';
  uint16_t count = 0;
  if (!read_u16(&count)) return corrupt("truncated count");
  if (!node.is_leaf) {
    uint64_t child0 = 0;
    if (!read_u64(&child0)) return corrupt("truncated child0");
    node.values.push_back(child0);
  }
  for (uint16_t i = 0; i < count; ++i) {
    uint16_t klen = 0;
    if (!read_u16(&klen)) return corrupt("truncated key length");
    if (klen > kMaxKeyLen || pos + klen > in.size()) {
      return corrupt("key overruns payload");
    }
    node.keys.emplace_back(in, pos, klen);
    pos += klen;
    uint64_t value = 0;
    if (!read_u64(&value)) return corrupt("truncated value");
    node.values.push_back(value);
  }
  if (pos != in.size()) return corrupt("trailing bytes");
  return node;
}

Result<Node> LoadNode(NodeIo& io, uint64_t page_id) {
  FC_ASSIGN_OR_RETURN(Page page, io.ReadNode(page_id));
  return DecodeNode(page, page_id);
}

// Index of the child subtree that covers `key`: values[i] where i is the
// number of separator keys <= key.
size_t ChildIndex(const Node& node, std::string_view key) {
  return static_cast<size_t>(
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin());
}

// Splits an overflowing node at a byte-balanced boundary so both halves
// fit a page regardless of how key lengths are distributed. Returns the
// separator key to install in the parent; `right` receives the upper half.
std::string SplitNode(Node* node, Node* right) {
  const size_t n = node->keys.size();
  size_t total = 0;
  for (const std::string& key : node->keys) total += EntryBytes(key);
  size_t acc = 0;
  size_t split = 1;
  for (size_t i = 0; i + 1 < n; ++i) {
    acc += EntryBytes(node->keys[i]);
    if (acc * 2 >= total) {
      split = i + 1;
      break;
    }
    split = i + 2;
  }
  // Both sides must be non-empty: a run of tiny keys before one huge tail
  // entry can push the byte-balanced boundary past the end.
  split = std::min(split, n - 1);
  right->is_leaf = node->is_leaf;
  std::string separator;
  if (node->is_leaf) {
    separator = node->keys[split];
    right->keys.assign(node->keys.begin() + split, node->keys.end());
    right->values.assign(node->values.begin() + split, node->values.end());
    node->keys.resize(split);
    node->values.resize(split);
  } else {
    // Internal split promotes the separator instead of copying it: the
    // right half's leftmost child is the child to the separator's right.
    separator = node->keys[split];
    right->keys.assign(node->keys.begin() + split + 1, node->keys.end());
    right->values.assign(node->values.begin() + split + 1,
                         node->values.end());
    node->keys.resize(split);
    node->values.resize(split + 1);
  }
  return separator;
}

struct InsertOutcome {
  uint64_t page = 0;  ///< the rewritten subtree root
  bool split = false;
  std::string separator;
  uint64_t right_page = 0;
};

Result<InsertOutcome> InsertRec(NodeIo& io, uint64_t page_id,
                                std::string_view key, uint64_t value) {
  FC_ASSIGN_OR_RETURN(Node node, LoadNode(io, page_id));
  if (node.is_leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    size_t at = static_cast<size_t>(it - node.keys.begin());
    if (it != node.keys.end() && *it == key) {
      node.values[at] = value;
    } else {
      node.keys.insert(it, std::string(key));
      node.values.insert(node.values.begin() + at, value);
    }
  } else {
    size_t child = ChildIndex(node, key);
    FC_ASSIGN_OR_RETURN(InsertOutcome sub,
                        InsertRec(io, node.values[child], key, value));
    node.values[child] = sub.page;
    if (sub.split) {
      node.keys.insert(node.keys.begin() + child, sub.separator);
      node.values.insert(node.values.begin() + child + 1, sub.right_page);
    }
  }

  InsertOutcome out;
  if (NodeBytes(node) > kMaxPayload) {
    Node right;
    out.separator = SplitNode(&node, &right);
    out.split = true;
    FC_ASSIGN_OR_RETURN(out.right_page, io.WriteNode(EncodeNode(right)));
  }
  FC_ASSIGN_OR_RETURN(out.page, io.WriteNode(EncodeNode(node)));
  io.FreeNode(page_id);
  return out;
}

struct DeleteRecOutcome {
  uint64_t page = 0;   ///< rewritten subtree root (0: subtree vanished)
  bool found = false;
  bool changed = false;
};

Result<DeleteRecOutcome> DeleteRec(NodeIo& io, uint64_t page_id,
                                   std::string_view key) {
  FC_ASSIGN_OR_RETURN(Node node, LoadNode(io, page_id));
  DeleteRecOutcome out;
  if (node.is_leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it == node.keys.end() || *it != key) {
      out.page = page_id;
      return out;
    }
    size_t at = static_cast<size_t>(it - node.keys.begin());
    node.keys.erase(it);
    node.values.erase(node.values.begin() + at);
    out.found = true;
    out.changed = true;
    if (node.keys.empty()) {
      io.FreeNode(page_id);
      out.page = 0;
      return out;
    }
  } else {
    size_t child = ChildIndex(node, key);
    FC_ASSIGN_OR_RETURN(DeleteRecOutcome sub,
                        DeleteRec(io, node.values[child], key));
    out.found = sub.found;
    if (!sub.changed) {
      out.page = page_id;
      return out;
    }
    out.changed = true;
    if (sub.page == 0) {
      // The child emptied out: drop it together with its separator (the
      // one to its left, or the first separator for child0).
      node.values.erase(node.values.begin() + child);
      node.keys.erase(node.keys.begin() + (child == 0 ? 0 : child - 1));
      if (node.keys.empty()) {
        // Only child0 left: collapse into it.
        io.FreeNode(page_id);
        out.page = node.values[0];
        return out;
      }
    } else {
      node.values[child] = sub.page;
    }
  }
  FC_ASSIGN_OR_RETURN(out.page, io.WriteNode(EncodeNode(node)));
  io.FreeNode(page_id);
  return out;
}

}  // namespace

Result<std::optional<uint64_t>> BTreeLookup(NodeIo& io, uint64_t root,
                                            std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyLen) {
    return Status::InvalidArgument(
        StrFormat("store key length %zu out of range [1, %zu]", key.size(),
                  kMaxKeyLen));
  }
  uint64_t page_id = root;
  while (page_id != 0) {
    FC_ASSIGN_OR_RETURN(Node node, LoadNode(io, page_id));
    if (node.is_leaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
      if (it != node.keys.end() && *it == key) {
        return std::optional<uint64_t>(
            node.values[static_cast<size_t>(it - node.keys.begin())]);
      }
      return std::optional<uint64_t>(std::nullopt);
    }
    page_id = node.values[ChildIndex(node, key)];
  }
  return std::optional<uint64_t>(std::nullopt);
}

Result<uint64_t> BTreeInsert(NodeIo& io, uint64_t root, std::string_view key,
                             uint64_t value) {
  if (key.empty() || key.size() > kMaxKeyLen) {
    return Status::InvalidArgument(
        StrFormat("store key length %zu out of range [1, %zu]", key.size(),
                  kMaxKeyLen));
  }
  if (root == 0) {
    Node leaf;
    leaf.keys.emplace_back(key);
    leaf.values.push_back(value);
    return io.WriteNode(EncodeNode(leaf));
  }
  FC_ASSIGN_OR_RETURN(InsertOutcome out, InsertRec(io, root, key, value));
  if (!out.split) return out.page;
  Node new_root;
  new_root.is_leaf = false;
  new_root.keys.push_back(out.separator);
  new_root.values.push_back(out.page);
  new_root.values.push_back(out.right_page);
  return io.WriteNode(EncodeNode(new_root));
}

Result<BTreeDeleteOutcome> BTreeDelete(NodeIo& io, uint64_t root,
                                       std::string_view key) {
  BTreeDeleteOutcome outcome;
  outcome.root = root;
  if (root == 0) return outcome;
  if (key.empty() || key.size() > kMaxKeyLen) {
    return Status::InvalidArgument(
        StrFormat("store key length %zu out of range [1, %zu]", key.size(),
                  kMaxKeyLen));
  }
  FC_ASSIGN_OR_RETURN(DeleteRecOutcome out, DeleteRec(io, root, key));
  outcome.found = out.found;
  if (out.changed) outcome.root = out.page;
  return outcome;
}

Status BTreeIterate(
    NodeIo& io, uint64_t root,
    const std::function<Status(std::string_view key, uint64_t value)>& fn) {
  if (root == 0) return Status::OK();
  FC_ASSIGN_OR_RETURN(Node node, LoadNode(io, root));
  if (node.is_leaf) {
    for (size_t i = 0; i < node.keys.size(); ++i) {
      FC_RETURN_IF_ERROR(fn(node.keys[i], node.values[i]));
    }
    return Status::OK();
  }
  for (uint64_t child : node.values) {
    FC_RETURN_IF_ERROR(BTreeIterate(io, child, fn));
  }
  return Status::OK();
}

Status BTreeCollectPages(NodeIo& io, uint64_t root,
                         std::vector<uint64_t>* pages) {
  if (root == 0) return Status::OK();
  pages->push_back(root);
  FC_ASSIGN_OR_RETURN(Node node, LoadNode(io, root));
  if (node.is_leaf) return Status::OK();
  for (uint64_t child : node.values) {
    FC_RETURN_IF_ERROR(BTreeCollectPages(io, child, pages));
  }
  return Status::OK();
}

}  // namespace store
}  // namespace fairclean
