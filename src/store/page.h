#ifndef FAIRCLEAN_STORE_PAGE_H_
#define FAIRCLEAN_STORE_PAGE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fairclean {
namespace store {

/// Fixed page size of the store file. Every on-disk structure (meta slots,
/// index nodes, data chains, free-list spill) is exactly one page, so a
/// torn write can damage at most one CRC unit.
constexpr size_t kPageSize = 4096;

/// Bytes of page header preceding the payload.
constexpr size_t kPageHeaderSize = 32;

/// Usable payload bytes per page.
constexpr size_t kMaxPayload = kPageSize - kPageHeaderSize;

/// On-disk page kinds.
enum class PageType : uint8_t {
  kMeta = 1,      ///< store header, one of the two alternating slots
  kIndex = 2,     ///< B-tree node
  kData = 3,      ///< value-record chain link
  kFreeList = 4,  ///< free-page-id spill chain link
};

/// Decoded page: header fields plus payload bytes (<= kMaxPayload).
///
/// Wire layout (little-endian, 32-byte header then payload, zero-padded to
/// kPageSize):
///   [0..4)   crc32 of bytes [4..kPageSize) — covers the rest of the
///            header, the payload, and the zero padding, so any torn or
///            bit-rotted byte anywhere in the page is detected
///   [4]      type (PageType)
///   [5]      flags (record compression etc.; 0 for non-data pages)
///   [6..8)   reserved, written 0
///   [8..12)  payload_len
///   [12..16) reserved, written 0
///   [16..24) next_page (chain link; 0 terminates)
///   [24..32) page_id echo — a page read back whose echo differs from the
///            id it was read at is a misdirected write, not just bit rot
struct Page {
  PageType type = PageType::kData;
  uint8_t flags = 0;
  uint64_t next_page = 0;
  uint64_t page_id = 0;
  std::string payload;
};

/// Serializes `page` into exactly kPageSize bytes (computes the CRC).
/// Payloads longer than kMaxPayload are a programming error and abort.
std::string EncodePage(const Page& page);

/// Parses one kPageSize buffer read at `expected_page_id`. InvalidArgument
/// on a short buffer, CRC mismatch, unknown type, out-of-range payload
/// length, or a page-id echo mismatch.
Result<Page> DecodePage(std::string_view bytes, uint64_t expected_page_id);

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_PAGE_H_
