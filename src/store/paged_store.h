#ifndef FAIRCLEAN_STORE_PAGED_STORE_H_
#define FAIRCLEAN_STORE_PAGED_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "store/btree.h"
#include "store/page_cache.h"
#include "store/pager.h"

namespace fairclean {
namespace store {

struct PagedStoreOptions {
  /// PageCache capacity in pages (FAIRCLEAN_STORE_CACHE_PAGES). 0 disables
  /// the cache (every access re-reads from disk).
  size_t cache_pages = 256;
  /// Compress record payloads (LZSS) when it shrinks them
  /// (FAIRCLEAN_STORE_COMPRESS). Read-side transparent: stored records
  /// carry a flag and the raw CRC, so Get returns the exact original bytes
  /// either way.
  bool compress = false;
  /// fsync at the two commit barriers. Disable only for bulk loads whose
  /// durability doesn't matter (benchmarks); crash safety requires it.
  bool fsync = true;
};

/// Single-file paged key/value store with copy-on-write crash safety —
/// the engine behind the paged artifact/result cache backend.
///
/// File layout: pages 0 and 1 are alternating meta slots (txn N writes
/// slot N%2); everything else is B-tree index nodes, value-record data
/// chains, and free-list spill pages. A mutation is one transaction:
///   1. write all new data/index/free-list pages (copy-on-write — never a
///      page the last committed state references),
///   2. fsync,
///   3. write the ONE meta page of the new transaction,
///   4. fsync.
/// A crash anywhere leaves at least one intact meta slot; Open picks the
/// valid slot with the highest txn id, so the store atomically holds
/// either the old or the new state. Pages freed by txn N (referenced only
/// by tree N-1) become allocatable at txn N+1: a crash during N+1 recovers
/// to tree N, which doesn't reference them — tree N-1 is never a fallback
/// for txn N+1 because its meta slot is the very one N+1 overwrites.
/// Free-list spill pages are always allocated at the end of the file,
/// never from the free list, so a meta's own spill chain can't be handed
/// out while that meta is live.
///
/// Thread-safe: all operations serialize on an internal mutex (single
/// process, single writer). Values are returned byte-verbatim (raw CRC
/// verified on read), so sha256 fingerprints of stored records are
/// identical to the flat-file backend's.
class PagedStore {
 public:
  static Result<std::unique_ptr<PagedStore>> Open(
      const std::string& path, const PagedStoreOptions& options);

  /// Inserts or replaces one record (one committed transaction).
  Status Put(const std::string& key, const std::string& value);

  /// The exact bytes last Put under `key`. NotFound when absent;
  /// InvalidArgument when the stored record is torn/corrupt.
  Result<std::string> Get(const std::string& key);

  /// Removes a record. NotFound when absent.
  Status Delete(const std::string& key);

  /// Re-keys a record without touching its data chain — quarantine uses
  /// this so even a record whose payload no longer passes CRC keeps its
  /// evidence bytes on disk. NotFound when `from` is absent;
  /// AlreadyExists when `to` is taken.
  Status Rename(const std::string& from, const std::string& to);

  /// Whether `key` exists (index lookup only).
  Result<bool> Contains(const std::string& key);

  /// All keys, sorted.
  Result<std::vector<std::string>> ListKeys();

  struct IntegrityReport {
    uint64_t txn_id = 0;          ///< recovered transaction
    uint64_t pages_total = 0;     ///< pages in the file
    uint64_t pages_reachable = 0; ///< metas + live tree + chains + spill
    uint64_t pages_free = 0;      ///< on the recovered free list
    uint64_t torn_pages = 0;      ///< reachable pages that fail to read
    uint64_t entries = 0;         ///< records reachable through the index
    std::vector<std::string> errors;  ///< one line per torn page
  };

  /// Full reachability walk of the recovered state: every index node,
  /// data-chain page, and free-list spill page must decode. torn_pages is
  /// 0 after any crash if the commit protocol held. (Pages that are
  /// neither reachable nor free are garbage from an uncommitted
  /// transaction — wasted space, not corruption.)
  Result<IntegrityReport> CheckIntegrity();

  uint64_t txn_id() const;
  uint64_t entry_count() const;
  const std::string& path() const { return pager_->path(); }

 private:
  friend class StoreNodeIo;

  PagedStore(std::unique_ptr<Pager> pager, PagedStoreOptions options);

  struct Meta {
    uint64_t txn_id = 0;
    uint64_t root = 0;
    uint64_t page_count = 2;
    uint64_t entry_count = 0;
    std::vector<uint64_t> free_pages;
    uint64_t spill_head = 0;  ///< first free-list spill page (0: none)
  };

  Status Initialize();
  Status LoadState();
  Result<Meta> ReadMetaSlot(uint64_t slot, bool* torn);
  static std::string EncodeMetaPayload(const Meta& meta, size_t inline_count);
  Result<Meta> DecodeMeta(const Page& page, uint64_t slot);

  /// Cached, CRC-checked page read.
  Result<Page> FetchPage(uint64_t page_id);
  /// Allocates from the free list (smallest id first) or extends the file.
  uint64_t AllocatePage();
  /// Writes one freshly allocated page and caches it.
  Status WriteNewPage(Page page);

  /// Commits the in-flight mutation: free-list spill, sync, meta, sync.
  Status CommitTxn();
  /// Restores committed in-memory state after a failed transaction.
  void RollbackTxn();

  Result<uint64_t> WriteRecordChain(const std::string& value);
  Result<std::string> ReadRecordChain(uint64_t head_page);
  Status FreeRecordChain(uint64_t head_page);

  Status PutLocked(const std::string& key, const std::string& value);

  mutable std::mutex mutex_;
  std::unique_ptr<Pager> pager_;
  PagedStoreOptions options_;
  PageCache cache_;

  // Committed state (snapshotted at txn start for rollback).
  uint64_t txn_id_ = 0;
  uint64_t root_ = 0;
  uint64_t page_count_ = 2;
  uint64_t entry_count_ = 0;
  std::vector<uint64_t> free_;          ///< allocatable now (sorted)
  std::vector<uint64_t> pending_free_;  ///< freed this txn; usable next txn
  std::vector<uint64_t> spill_pages_;   ///< current meta's spill chain

  struct TxnSnapshot {
    uint64_t root;
    uint64_t page_count;
    uint64_t entry_count;
    std::vector<uint64_t> free_pages;
    std::vector<uint64_t> pending_free;
    std::vector<uint64_t> spill_pages;
  };
  TxnSnapshot snapshot_;

  obs::Counter* txns_committed_;
  obs::Counter* txns_rolled_back_;
};

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_PAGED_STORE_H_
