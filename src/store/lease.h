#ifndef FAIRCLEAN_STORE_LEASE_H_
#define FAIRCLEAN_STORE_LEASE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace fairclean {
namespace store {

/// One claim record as persisted in a lease file: the owning process, the
/// monotonic deadline its lease runs to, a generation counter that grows by
/// one on every ownership change, and a human-readable owner label for
/// diagnostics. CLOCK_MONOTONIC is system-wide on one machine, so deadlines
/// written by one process are directly comparable in another.
struct LeaseRecord {
  int64_t pid = 0;  ///< 0: released (the key is free)
  double deadline_mono_s = 0.0;
  uint64_t generation = 0;
  std::string owner;

  bool released() const { return pid == 0; }
};

/// Seconds on the CLOCK_MONOTONIC clock (comparable across processes on
/// one machine, immune to wall-clock steps).
double MonotonicSeconds();

/// True when `pid` names a live process (kill(pid, 0) semantics: EPERM
/// still counts as alive — the process exists, we just cannot signal it).
bool PidAlive(int64_t pid);

/// How an Acquire must treat an existing record. This is the protocol's
/// whole steal rule as one pure function — the property tests pin it, and
/// Acquire merely applies it under the file lock.
enum class ClaimState {
  kFree,       ///< released record: acquire without stealing
  kHeld,       ///< live owner inside its lease: acquire must fail
  kStealable,  ///< owner dead, or its lease deadline has passed
};

/// Deterministic given (record, now, owner_alive): a released record is
/// free; a live owner whose deadline is still ahead holds; everything else
/// (dead pid, or deadline passed even for a live-but-wedged owner) is
/// stealable.
ClaimState ClassifyClaim(const LeaseRecord& record, double now_mono_s,
                         bool owner_alive);

/// Proof of a successful Acquire: the key, the generation the caller owns,
/// and whether ownership was taken from a dead/expired previous holder
/// (`stolen`) rather than a free record.
struct LeaseToken {
  std::string key;
  uint64_t generation = 0;
  bool stolen = false;
};

/// Single-producer claim records for cross-process work coordination
/// (DESIGN.md Section 16). Each key is one file under `dir`; every
/// operation is a read-modify-write under an exclusive flock on that file,
/// so concurrent Acquire/Refresh/Release calls from any number of
/// processes serialize per key and exactly one caller wins each ownership
/// change. Files are never unlinked (Release writes a released record
/// instead), which closes the classic unlink-vs-flock orphan-inode race.
///
/// Claims deliberately do NOT go through the BlobStore: they are
/// coordination state, not artifacts, so they must not pollute artifact
/// stores, reuse counters, or cache-directory byte comparisons — and the
/// paged backend is single-writer per process, which is exactly what a
/// cross-process claim cannot be.
class LeaseStore {
 public:
  /// `dir` is created on first use (conventionally "<cache_dir>/claims").
  explicit LeaseStore(std::string dir);

  /// Takes ownership of `key` for `lease_s` seconds from now. Fails with
  /// Unavailable while a live owner's lease is running (re-acquiring a key
  /// this process already owns just extends it). A record left by a dead
  /// process or past its deadline is stolen: the returned token has
  /// `stolen` set and a bumped generation.
  Result<LeaseToken> Acquire(const std::string& key, const std::string& owner,
                             double lease_s);

  /// Extends the lease of a token this process still owns by `lease_s`
  /// from now. FailedPrecondition when the claim was stolen or released —
  /// the caller no longer owns the key and must stop producing under it.
  Status Refresh(const LeaseToken& token, double lease_s);

  /// Releases a token this process owns (writes a released record, keeping
  /// the generation so later acquires keep monotonic history). Releasing a
  /// stolen-away token is a no-op OK: the new owner's record stays.
  Status Release(const LeaseToken& token);

  /// The current record of `key`. NotFound when no claim file exists.
  Result<LeaseRecord> Read(const std::string& key) const;

  const std::string& dir() const { return dir_; }

  /// One-line serialization used in the claim files (format:
  /// "pid <pid> deadline <secs> gen <n> owner <label>\n").
  static std::string Encode(const LeaseRecord& record);
  static Result<LeaseRecord> Decode(const std::string& text);

 private:
  std::string PathFor(const std::string& key) const;

  std::string dir_;
};

}  // namespace store
}  // namespace fairclean

#endif  // FAIRCLEAN_STORE_LEASE_H_
