#include "store/page.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/safe_io.h"
#include "common/strings.h"

namespace fairclean {
namespace store {

namespace {

void PutU16(std::string* out, size_t at, uint16_t v) {
  (*out)[at] = static_cast<char>(v & 0xff);
  (*out)[at + 1] = static_cast<char>((v >> 8) & 0xff);
}

void PutU32(std::string* out, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PutU64(std::string* out, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*out)[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t GetU32(std::string_view in, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::string_view in, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodePage(const Page& page) {
  if (page.payload.size() > kMaxPayload) {
    std::fprintf(stderr,
                 "fatal: store page payload %zu exceeds %zu bytes\n",
                 page.payload.size(), kMaxPayload);
    std::abort();
  }
  std::string out(kPageSize, '\0');
  out[4] = static_cast<char>(page.type);
  out[5] = static_cast<char>(page.flags);
  PutU16(&out, 6, 0);
  PutU32(&out, 8, static_cast<uint32_t>(page.payload.size()));
  PutU32(&out, 12, 0);
  PutU64(&out, 16, page.next_page);
  PutU64(&out, 24, page.page_id);
  std::memcpy(&out[kPageHeaderSize], page.payload.data(),
              page.payload.size());
  PutU32(&out, 0, Crc32(std::string_view(out).substr(4)));
  return out;
}

Result<Page> DecodePage(std::string_view bytes, uint64_t expected_page_id) {
  if (bytes.size() != kPageSize) {
    return Status::InvalidArgument(
        StrFormat("short page read at page %llu: %zu of %zu bytes",
                  static_cast<unsigned long long>(expected_page_id),
                  bytes.size(), kPageSize));
  }
  uint32_t stored_crc = GetU32(bytes, 0);
  uint32_t actual_crc = Crc32(bytes.substr(4));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument(
        StrFormat("page %llu crc mismatch: stored %08x, computed %08x",
                  static_cast<unsigned long long>(expected_page_id),
                  stored_crc, actual_crc));
  }
  Page page;
  uint8_t raw_type = static_cast<uint8_t>(bytes[4]);
  if (raw_type < static_cast<uint8_t>(PageType::kMeta) ||
      raw_type > static_cast<uint8_t>(PageType::kFreeList)) {
    return Status::InvalidArgument(
        StrFormat("page %llu has unknown type %u",
                  static_cast<unsigned long long>(expected_page_id),
                  static_cast<unsigned>(raw_type)));
  }
  page.type = static_cast<PageType>(raw_type);
  page.flags = static_cast<uint8_t>(bytes[5]);
  uint32_t payload_len = GetU32(bytes, 8);
  if (payload_len > kMaxPayload) {
    return Status::InvalidArgument(
        StrFormat("page %llu payload length %u exceeds %zu",
                  static_cast<unsigned long long>(expected_page_id),
                  payload_len, kMaxPayload));
  }
  page.next_page = GetU64(bytes, 16);
  page.page_id = GetU64(bytes, 24);
  if (page.page_id != expected_page_id) {
    return Status::InvalidArgument(StrFormat(
        "misdirected write: page %llu carries id %llu",
        static_cast<unsigned long long>(expected_page_id),
        static_cast<unsigned long long>(page.page_id)));
  }
  page.payload.assign(bytes.data() + kPageHeaderSize, payload_len);
  return page;
}

}  // namespace store
}  // namespace fairclean
