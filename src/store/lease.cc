#include "store/lease.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

namespace fairclean {
namespace store {
namespace {

/// RAII wrapper for an open, exclusively flocked claim file. All claim
/// mutations happen through one of these, so concurrent processes
/// serialize per key at the kernel.
class LockedClaimFile {
 public:
  static Result<LockedClaimFile> Open(const std::string& path,
                                      bool create_ok) {
    int flags = O_RDWR | O_CLOEXEC;
    if (create_ok) flags |= O_CREAT;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      if (errno == ENOENT && !create_ok) {
        return Status::NotFound("no claim file: " + path);
      }
      return Status::IoError("open " + path + ": " + std::strerror(errno));
    }
    while (::flock(fd, LOCK_EX) != 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IoError("flock " + path + ": " + std::strerror(saved));
    }
    return LockedClaimFile(fd);
  }

  LockedClaimFile(LockedClaimFile&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  LockedClaimFile& operator=(LockedClaimFile&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  LockedClaimFile(const LockedClaimFile&) = delete;
  LockedClaimFile& operator=(const LockedClaimFile&) = delete;
  ~LockedClaimFile() { Close(); }

  Result<std::string> ReadAll() const {
    std::string out;
    char buf[256];
    off_t off = 0;
    for (;;) {
      ssize_t n = ::pread(fd_, buf, sizeof(buf), off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pread claim: ") +
                               std::strerror(errno));
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
      off += n;
    }
    return out;
  }

  Status Rewrite(const std::string& text) {
    if (::ftruncate(fd_, 0) != 0) {
      return Status::IoError(std::string("ftruncate claim: ") +
                             std::strerror(errno));
    }
    size_t done = 0;
    while (done < text.size()) {
      ssize_t n = ::pwrite(fd_, text.data() + done, text.size() - done,
                           static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pwrite claim: ") +
                               std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("fsync claim: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  explicit LockedClaimFile(int fd) : fd_(fd) {}

  void Close() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd_ = -1;
};

/// Claim keys may contain '/' (cell ids do); the file name flattens them.
std::string SanitizeKey(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ':') c = '_';
  }
  return out;
}

}  // namespace

double MonotonicSeconds() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

bool PidAlive(int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  // EPERM: the process exists but we may not signal it.
  return errno == EPERM;
}

ClaimState ClassifyClaim(const LeaseRecord& record, double now_mono_s,
                         bool owner_alive) {
  if (record.released()) return ClaimState::kFree;
  if (!owner_alive) return ClaimState::kStealable;
  if (now_mono_s > record.deadline_mono_s) return ClaimState::kStealable;
  return ClaimState::kHeld;
}

std::string LeaseStore::Encode(const LeaseRecord& record) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "pid %lld deadline %.9f gen %llu owner ",
                static_cast<long long>(record.pid), record.deadline_mono_s,
                static_cast<unsigned long long>(record.generation));
  return std::string(buf) + record.owner + "\n";
}

Result<LeaseRecord> LeaseStore::Decode(const std::string& text) {
  std::istringstream in(text);
  std::string tag_pid, tag_deadline, tag_gen, tag_owner;
  LeaseRecord record;
  long long pid = 0;
  unsigned long long gen = 0;
  if (!(in >> tag_pid >> pid >> tag_deadline >> record.deadline_mono_s >>
        tag_gen >> gen >> tag_owner) ||
      tag_pid != "pid" || tag_deadline != "deadline" || tag_gen != "gen" ||
      tag_owner != "owner") {
    return Status::IoError("malformed claim record: " + text);
  }
  record.pid = pid;
  record.generation = gen;
  in >> record.owner;  // may be empty for a released record
  return record;
}

LeaseStore::LeaseStore(std::string dir) : dir_(std::move(dir)) {}

std::string LeaseStore::PathFor(const std::string& key) const {
  return dir_ + "/" + SanitizeKey(key) + ".lease";
}

Result<LeaseToken> LeaseStore::Acquire(const std::string& key,
                                       const std::string& owner,
                                       double lease_s) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("create claims dir " + dir_ + ": " + ec.message());
  }
  FC_ASSIGN_OR_RETURN(LockedClaimFile file,
                      LockedClaimFile::Open(PathFor(key), /*create_ok=*/true));
  FC_ASSIGN_OR_RETURN(std::string text, file.ReadAll());

  LeaseRecord prev;
  bool stolen = false;
  if (!text.empty()) {
    FC_ASSIGN_OR_RETURN(prev, Decode(text));
    const int64_t self = static_cast<int64_t>(::getpid());
    if (prev.pid != self) {
      ClaimState state =
          ClassifyClaim(prev, MonotonicSeconds(), PidAlive(prev.pid));
      if (state == ClaimState::kHeld) {
        return Status::Unavailable("claim " + key + " held by pid " +
                                   std::to_string(prev.pid));
      }
      stolen = state == ClaimState::kStealable;
    }
  }

  LeaseRecord next;
  next.pid = static_cast<int64_t>(::getpid());
  next.deadline_mono_s = MonotonicSeconds() + lease_s;
  next.generation = prev.generation + 1;
  next.owner = owner;
  FC_RETURN_IF_ERROR(file.Rewrite(Encode(next)));

  LeaseToken token;
  token.key = key;
  token.generation = next.generation;
  token.stolen = stolen;
  return token;
}

Status LeaseStore::Refresh(const LeaseToken& token, double lease_s) {
  FC_ASSIGN_OR_RETURN(
      LockedClaimFile file,
      LockedClaimFile::Open(PathFor(token.key), /*create_ok=*/false));
  FC_ASSIGN_OR_RETURN(std::string text, file.ReadAll());
  FC_ASSIGN_OR_RETURN(LeaseRecord record, Decode(text));
  if (record.pid != static_cast<int64_t>(::getpid()) ||
      record.generation != token.generation) {
    return Status::InvalidArgument("claim " + token.key +
                                   " no longer owned by this process");
  }
  record.deadline_mono_s = MonotonicSeconds() + lease_s;
  return file.Rewrite(Encode(record));
}

Status LeaseStore::Release(const LeaseToken& token) {
  auto opened = LockedClaimFile::Open(PathFor(token.key), /*create_ok=*/false);
  if (!opened.ok()) {
    // Never created (or swept): nothing to release.
    if (opened.status().code() == StatusCode::kNotFound) return Status::OK();
    return opened.status();
  }
  LockedClaimFile file = std::move(opened).ValueOrDie();
  FC_ASSIGN_OR_RETURN(std::string text, file.ReadAll());
  FC_ASSIGN_OR_RETURN(LeaseRecord record, Decode(text));
  if (record.pid != static_cast<int64_t>(::getpid()) ||
      record.generation != token.generation) {
    // Stolen away: the new owner's record stands.
    return Status::OK();
  }
  record.pid = 0;  // released marker; generation and owner kept for history
  return file.Rewrite(LeaseStore::Encode(record));
}

Result<LeaseRecord> LeaseStore::Read(const std::string& key) const {
  FC_ASSIGN_OR_RETURN(
      LockedClaimFile file,
      LockedClaimFile::Open(PathFor(key), /*create_ok=*/false));
  FC_ASSIGN_OR_RETURN(std::string text, file.ReadAll());
  return Decode(text);
}

}  // namespace store
}  // namespace fairclean
