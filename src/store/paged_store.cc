#include "store/paged_store.h"

#include <algorithm>
#include <utility>

#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/flight.h"
#include "store/compress.h"

namespace fairclean {
namespace store {

namespace {

constexpr char kMagic[8] = {'F', 'C', 'P', 'A', 'G', 'E', 'S', '1'};

// Meta payload: magic(8) txn(8) root(8) page_count(8) entry_count(8)
// spill_head(8) free_count(4) free ids(8 each).
constexpr size_t kMetaFixedBytes = 8 * 6 + 4;
constexpr size_t kMetaInlineFreeCap = (kMaxPayload - kMetaFixedBytes) / 8;
// Spill page payload: count(4) + ids.
constexpr size_t kSpillFreeCap = (kMaxPayload - 4) / 8;

// Record header at the front of a data chain's byte stream: the exact raw
// size and CRC pin byte-verbatim reads through compression and chunking.
constexpr size_t kRecordHeaderBytes = 16;
constexpr uint8_t kRecordCompressed = 1;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(std::string_view in, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::string_view in, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

/// NodeIo over the store's allocator and page cache: every node write is
/// copy-on-write into a fresh page, every superseded node lands on the
/// pending free list (reusable only after the next commit).
class StoreNodeIo : public NodeIo {
 public:
  explicit StoreNodeIo(PagedStore* store) : store_(store) {}

  Result<Page> ReadNode(uint64_t page_id) override {
    return store_->FetchPage(page_id);
  }

  Result<uint64_t> WriteNode(const std::string& payload) override {
    Page page;
    page.type = PageType::kIndex;
    page.page_id = store_->AllocatePage();
    page.payload = payload;
    uint64_t id = page.page_id;
    FC_RETURN_IF_ERROR(store_->WriteNewPage(std::move(page)));
    return id;
  }

  void FreeNode(uint64_t page_id) override {
    store_->pending_free_.push_back(page_id);
  }

 private:
  PagedStore* store_;
};

PagedStore::PagedStore(std::unique_ptr<Pager> pager,
                       PagedStoreOptions options)
    : pager_(std::move(pager)),
      options_(options),
      cache_(options.cache_pages),
      txns_committed_(
          obs::MetricsRegistry::Global().GetCounter("store.txns_committed")),
      txns_rolled_back_(obs::MetricsRegistry::Global().GetCounter(
          "store.txns_rolled_back")) {}

Result<std::unique_ptr<PagedStore>> PagedStore::Open(
    const std::string& path, const PagedStoreOptions& options) {
  FC_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager, Pager::Open(path));
  std::unique_ptr<PagedStore> store(
      new PagedStore(std::move(pager), options));
  FC_RETURN_IF_ERROR(store->LoadState());
  return store;
}

std::string PagedStore::EncodeMetaPayload(const Meta& meta,
                                          size_t inline_count) {
  std::string out;
  out.reserve(kMetaFixedBytes + 8 * inline_count);
  out.append(kMagic, sizeof(kMagic));
  AppendU64(&out, meta.txn_id);
  AppendU64(&out, meta.root);
  AppendU64(&out, meta.page_count);
  AppendU64(&out, meta.entry_count);
  AppendU64(&out, meta.spill_head);
  AppendU32(&out, static_cast<uint32_t>(inline_count));
  for (size_t i = 0; i < inline_count; ++i) {
    AppendU64(&out, meta.free_pages[i]);
  }
  return out;
}

Result<PagedStore::Meta> PagedStore::DecodeMeta(const Page& page,
                                                uint64_t slot) {
  auto invalid = [&](const char* what) {
    return Status::InvalidArgument(
        StrFormat("meta slot %llu: %s",
                  static_cast<unsigned long long>(slot), what));
  };
  if (page.type != PageType::kMeta) return invalid("not a meta page");
  const std::string& in = page.payload;
  if (in.size() < kMetaFixedBytes) return invalid("truncated payload");
  if (std::string_view(in.data(), 8) != std::string_view(kMagic, 8)) {
    return invalid("bad magic");
  }
  Meta meta;
  meta.txn_id = GetU64(in, 8);
  meta.root = GetU64(in, 16);
  meta.page_count = GetU64(in, 24);
  meta.entry_count = GetU64(in, 32);
  meta.spill_head = GetU64(in, 40);
  uint32_t inline_count = GetU32(in, 48);
  if (in.size() != kMetaFixedBytes + 8ull * inline_count) {
    return invalid("free list overruns payload");
  }
  meta.free_pages.reserve(inline_count);
  for (uint32_t i = 0; i < inline_count; ++i) {
    meta.free_pages.push_back(GetU64(in, kMetaFixedBytes + 8ull * i));
  }
  return meta;
}

Result<PagedStore::Meta> PagedStore::ReadMetaSlot(uint64_t slot,
                                                  bool* torn) {
  *torn = false;
  Result<Page> page = pager_->Read(slot);
  if (!page.ok()) {
    if (page.status().code() == StatusCode::kIoError) return page.status();
    *torn = true;
    return page.status();
  }
  Result<Meta> meta = DecodeMeta(*page, slot);
  if (!meta.ok()) *torn = true;
  return meta;
}

Status PagedStore::Initialize() {
  Meta meta;  // txn 0, empty tree, pages 0..1 only
  std::string payload = EncodeMetaPayload(meta, 0);
  for (uint64_t slot = 0; slot < 2; ++slot) {
    Page page;
    page.type = PageType::kMeta;
    page.page_id = slot;
    page.payload = payload;
    FC_RETURN_IF_ERROR(pager_->Write(page));
  }
  if (options_.fsync) FC_RETURN_IF_ERROR(pager_->Sync());
  return Status::OK();
}

Status PagedStore::LoadState() {
  if (pager_->PageCount() == 0) {
    FC_RETURN_IF_ERROR(Initialize());
  }
  std::optional<Meta> best;
  for (uint64_t slot = 0; slot < 2; ++slot) {
    bool torn = false;
    Result<Meta> meta = ReadMetaSlot(slot, &torn);
    if (!meta.ok()) {
      if (torn) continue;  // torn slot: the other one recovers
      return meta.status();
    }
    if (!best.has_value() || meta->txn_id > best->txn_id) {
      best = std::move(*meta);
    }
  }
  if (!best.has_value()) {
    return Status::IoError("store file " + pager_->path() +
                           " has no valid meta page; both slots are torn");
  }

  txn_id_ = best->txn_id;
  root_ = best->root;
  page_count_ = std::max<uint64_t>(best->page_count, 2);
  entry_count_ = best->entry_count;
  free_ = best->free_pages;
  spill_pages_.clear();
  pending_free_.clear();

  // Follow the free-list spill chain.
  uint64_t spill = best->spill_head;
  while (spill != 0) {
    if (spill_pages_.size() > page_count_) {
      return Status::InvalidArgument("free-list spill chain loops");
    }
    FC_ASSIGN_OR_RETURN(Page page, pager_->Read(spill));
    if (page.type != PageType::kFreeList) {
      return Status::InvalidArgument(
          StrFormat("page %llu is not a free-list page",
                    static_cast<unsigned long long>(spill)));
    }
    if (page.payload.size() < 4) {
      return Status::InvalidArgument("truncated free-list page");
    }
    uint32_t count = GetU32(page.payload, 0);
    if (page.payload.size() != 4 + 8ull * count) {
      return Status::InvalidArgument("malformed free-list page");
    }
    for (uint32_t i = 0; i < count; ++i) {
      free_.push_back(GetU64(page.payload, 4 + 8ull * i));
    }
    spill_pages_.push_back(spill);
    spill = page.next_page;
  }
  // Descending order: pop_back hands out the smallest id first, which
  // keeps allocation deterministic.
  std::sort(free_.begin(), free_.end(), std::greater<uint64_t>());
  return Status::OK();
}

Result<Page> PagedStore::FetchPage(uint64_t page_id) {
  std::optional<Page> cached = cache_.Get(page_id);
  if (cached.has_value()) return std::move(*cached);
  FC_ASSIGN_OR_RETURN(Page page, pager_->Read(page_id));
  cache_.Put(page_id, page);
  return page;
}

uint64_t PagedStore::AllocatePage() {
  if (!free_.empty()) {
    uint64_t id = free_.back();
    free_.pop_back();
    return id;
  }
  return page_count_++;
}

Status PagedStore::WriteNewPage(Page page) {
  FC_RETURN_IF_ERROR(pager_->Write(page));
  uint64_t id = page.page_id;
  cache_.Put(id, std::move(page));
  return Status::OK();
}

Status PagedStore::CommitTxn() {
  const uint64_t next_txn = txn_id_ + 1;

  // Everything freed so far plus the previous meta's spill chain becomes
  // allocatable once this commit lands (the only fallback meta from here
  // on is the one this commit writes... or its predecessor, neither of
  // which references these pages).
  std::vector<uint64_t> free_ids = free_;
  free_ids.insert(free_ids.end(), pending_free_.begin(),
                  pending_free_.end());
  free_ids.insert(free_ids.end(), spill_pages_.begin(), spill_pages_.end());
  std::sort(free_ids.begin(), free_ids.end());
  free_ids.erase(std::unique(free_ids.begin(), free_ids.end()),
                 free_ids.end());

  // Spill the overflow beyond the meta's inline capacity into chain pages
  // allocated strictly at the end of the file: a page from the free list
  // could still be referenced as the OTHER meta slot's spill chain.
  std::vector<uint64_t> new_spill;
  Meta meta;
  meta.txn_id = next_txn;
  meta.root = root_;
  meta.entry_count = entry_count_;
  meta.free_pages = free_ids;
  size_t inline_count = std::min(free_ids.size(), kMetaInlineFreeCap);
  size_t spilled = free_ids.size() - inline_count;
  if (spilled > 0) {
    size_t chain_pages = (spilled + kSpillFreeCap - 1) / kSpillFreeCap;
    std::vector<uint64_t> ids;
    ids.reserve(chain_pages);
    for (size_t i = 0; i < chain_pages; ++i) ids.push_back(page_count_++);
    size_t at = inline_count;
    for (size_t i = 0; i < chain_pages; ++i) {
      size_t take = std::min(kSpillFreeCap, free_ids.size() - at);
      Page page;
      page.type = PageType::kFreeList;
      page.page_id = ids[i];
      page.next_page = i + 1 < chain_pages ? ids[i + 1] : 0;
      AppendU32(&page.payload, static_cast<uint32_t>(take));
      for (size_t j = 0; j < take; ++j) {
        AppendU64(&page.payload, free_ids[at + j]);
      }
      at += take;
      FC_RETURN_IF_ERROR(WriteNewPage(std::move(page)));
    }
    meta.spill_head = ids[0];
    new_spill = std::move(ids);
  }
  meta.page_count = page_count_;

  // Barrier 1: all copy-on-write pages of this transaction are durable
  // before any meta references them.
  if (options_.fsync) FC_RETURN_IF_ERROR(pager_->Sync());

  Page meta_page;
  meta_page.type = PageType::kMeta;
  meta_page.page_id = next_txn % 2;
  meta_page.payload = EncodeMetaPayload(meta, inline_count);
  FC_RETURN_IF_ERROR(pager_->Write(meta_page));

  // Barrier 2: the commit point. A crash before this leaves the previous
  // meta as the recovered state; after it, the new one.
  if (options_.fsync) FC_RETURN_IF_ERROR(pager_->Sync());

  txn_id_ = next_txn;
  free_ = std::move(free_ids);
  std::sort(free_.begin(), free_.end(), std::greater<uint64_t>());
  pending_free_.clear();
  spill_pages_ = std::move(new_spill);
  txns_committed_->Increment();
  if (obs::FlightEnabled()) {
    obs::FlightRecorder::Record(
        obs::FlightEventType::kTxnCommit,
        obs::FlightRecorder::SiteForCategory("store.txn"),
        static_cast<uint32_t>(next_txn));
  }
  return Status::OK();
}

void PagedStore::RollbackTxn() {
  root_ = snapshot_.root;
  page_count_ = snapshot_.page_count;
  entry_count_ = snapshot_.entry_count;
  free_ = snapshot_.free_pages;
  pending_free_ = snapshot_.pending_free;
  spill_pages_ = snapshot_.spill_pages;
  // Pages written by the failed transaction may be cached; none of them
  // are reachable from the committed state, but dropping everything is
  // the simple way to guarantee it.
  cache_.Clear();
  txns_rolled_back_->Increment();
  if (obs::FlightEnabled()) {
    obs::FlightRecorder::Record(
        obs::FlightEventType::kTxnRollback,
        obs::FlightRecorder::SiteForCategory("store.txn"),
        static_cast<uint32_t>(txn_id_));
  }
}

Result<uint64_t> PagedStore::WriteRecordChain(const std::string& value) {
  if (value.size() > UINT32_MAX) {
    return Status::InvalidArgument("store record exceeds 4 GiB");
  }
  uint8_t flags = 0;
  const std::string* stored = &value;
  std::string compressed;
  if (options_.compress && value.size() > 64) {
    compressed = LzssCompress(value);
    if (compressed.size() < value.size()) {
      stored = &compressed;
      flags = kRecordCompressed;
    }
  }
  std::string record;
  record.reserve(kRecordHeaderBytes + stored->size());
  AppendU32(&record, static_cast<uint32_t>(value.size()));
  AppendU32(&record, static_cast<uint32_t>(stored->size()));
  AppendU32(&record, Crc32(value));
  record.push_back(static_cast<char>(flags));
  record.append(3, '\0');
  record += *stored;

  size_t chunks = (record.size() + kMaxPayload - 1) / kMaxPayload;
  if (chunks == 0) chunks = 1;
  std::vector<uint64_t> ids;
  ids.reserve(chunks);
  for (size_t i = 0; i < chunks; ++i) ids.push_back(AllocatePage());
  for (size_t i = 0; i < chunks; ++i) {
    Page page;
    page.type = PageType::kData;
    page.page_id = ids[i];
    page.next_page = i + 1 < chunks ? ids[i + 1] : 0;
    size_t offset = i * kMaxPayload;
    page.payload = record.substr(offset,
                                 std::min(kMaxPayload,
                                          record.size() - offset));
    FC_RETURN_IF_ERROR(WriteNewPage(std::move(page)));
  }
  return ids[0];
}

Result<std::string> PagedStore::ReadRecordChain(uint64_t head_page) {
  std::string record;
  uint64_t page_id = head_page;
  uint64_t hops = 0;
  while (page_id != 0) {
    if (++hops > page_count_) {
      return Status::InvalidArgument(
          StrFormat("data chain at page %llu loops",
                    static_cast<unsigned long long>(head_page)));
    }
    FC_ASSIGN_OR_RETURN(Page page, FetchPage(page_id));
    if (page.type != PageType::kData) {
      return Status::InvalidArgument(
          StrFormat("page %llu is not a data page",
                    static_cast<unsigned long long>(page_id)));
    }
    record += page.payload;
    page_id = page.next_page;
  }
  if (record.size() < kRecordHeaderBytes) {
    return Status::InvalidArgument("record shorter than its header");
  }
  uint32_t raw_len = GetU32(record, 0);
  uint32_t stored_len = GetU32(record, 4);
  uint32_t raw_crc = GetU32(record, 8);
  uint8_t flags = static_cast<uint8_t>(record[12]);
  if (record.size() != kRecordHeaderBytes + stored_len) {
    return Status::InvalidArgument(
        StrFormat("record payload is %zu bytes, header says %u",
                  record.size() - kRecordHeaderBytes, stored_len));
  }
  std::string raw;
  if ((flags & kRecordCompressed) != 0) {
    FC_ASSIGN_OR_RETURN(
        raw, LzssDecompress(
                 std::string_view(record).substr(kRecordHeaderBytes),
                 raw_len));
  } else {
    raw = record.substr(kRecordHeaderBytes);
  }
  if (raw.size() != raw_len) {
    return Status::InvalidArgument(
        StrFormat("record is %zu bytes, header says %u", raw.size(),
                  raw_len));
  }
  uint32_t actual_crc = Crc32(raw);
  if (actual_crc != raw_crc) {
    return Status::InvalidArgument(
        StrFormat("record crc mismatch: stored %08x, computed %08x",
                  raw_crc, actual_crc));
  }
  return raw;
}

Status PagedStore::FreeRecordChain(uint64_t head_page) {
  uint64_t page_id = head_page;
  uint64_t hops = 0;
  while (page_id != 0 && ++hops <= page_count_) {
    pending_free_.push_back(page_id);
    Result<Page> page = FetchPage(page_id);
    // An unreadable link orphans the chain's tail: wasted space, not
    // corruption — integrity counts it as garbage, never as torn.
    if (!page.ok()) break;
    page_id = page->next_page;
  }
  return Status::OK();
}

Status PagedStore::PutLocked(const std::string& key,
                             const std::string& value) {
  snapshot_ = {root_, page_count_, entry_count_, free_, pending_free_,
               spill_pages_};
  Status status = [&]() -> Status {
    StoreNodeIo io(this);
    FC_ASSIGN_OR_RETURN(std::optional<uint64_t> old_head,
                        BTreeLookup(io, root_, key));
    FC_ASSIGN_OR_RETURN(uint64_t head, WriteRecordChain(value));
    FC_ASSIGN_OR_RETURN(root_, BTreeInsert(io, root_, key, head));
    if (old_head.has_value()) {
      FC_RETURN_IF_ERROR(FreeRecordChain(*old_head));
    } else {
      ++entry_count_;
    }
    return CommitTxn();
  }();
  if (!status.ok()) RollbackTxn();
  return status;
}

Status PagedStore::Put(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  return PutLocked(key, value);
}

Result<std::string> PagedStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreNodeIo io(this);
  FC_ASSIGN_OR_RETURN(std::optional<uint64_t> head,
                      BTreeLookup(io, root_, key));
  if (!head.has_value()) {
    return Status::NotFound("store has no record \"" + key + "\"");
  }
  return ReadRecordChain(*head);
}

Status PagedStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_ = {root_, page_count_, entry_count_, free_, pending_free_,
               spill_pages_};
  Status status = [&]() -> Status {
    StoreNodeIo io(this);
    FC_ASSIGN_OR_RETURN(std::optional<uint64_t> head,
                        BTreeLookup(io, root_, key));
    if (!head.has_value()) {
      return Status::NotFound("store has no record \"" + key + "\"");
    }
    FC_ASSIGN_OR_RETURN(BTreeDeleteOutcome outcome,
                        BTreeDelete(io, root_, key));
    root_ = outcome.root;
    FC_RETURN_IF_ERROR(FreeRecordChain(*head));
    --entry_count_;
    return CommitTxn();
  }();
  if (!status.ok() && status.code() != StatusCode::kNotFound) RollbackTxn();
  return status;
}

Status PagedStore::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_ = {root_, page_count_, entry_count_, free_, pending_free_,
               spill_pages_};
  Status status = [&]() -> Status {
    StoreNodeIo io(this);
    FC_ASSIGN_OR_RETURN(std::optional<uint64_t> head,
                        BTreeLookup(io, root_, from));
    if (!head.has_value()) {
      return Status::NotFound("store has no record \"" + from + "\"");
    }
    FC_ASSIGN_OR_RETURN(std::optional<uint64_t> taken,
                        BTreeLookup(io, root_, to));
    if (taken.has_value()) {
      return Status::AlreadyExists("store already has \"" + to + "\"");
    }
    FC_ASSIGN_OR_RETURN(root_, BTreeInsert(io, root_, to, *head));
    FC_ASSIGN_OR_RETURN(BTreeDeleteOutcome outcome,
                        BTreeDelete(io, root_, from));
    root_ = outcome.root;
    return CommitTxn();
  }();
  if (!status.ok() && status.code() != StatusCode::kNotFound &&
      status.code() != StatusCode::kAlreadyExists) {
    RollbackTxn();
  }
  return status;
}

Result<bool> PagedStore::Contains(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreNodeIo io(this);
  FC_ASSIGN_OR_RETURN(std::optional<uint64_t> head,
                      BTreeLookup(io, root_, key));
  return head.has_value();
}

Result<std::vector<std::string>> PagedStore::ListKeys() {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreNodeIo io(this);
  std::vector<std::string> keys;
  FC_RETURN_IF_ERROR(
      BTreeIterate(io, root_, [&](std::string_view key, uint64_t) {
        keys.emplace_back(key);
        return Status::OK();
      }));
  return keys;
}

uint64_t PagedStore::txn_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return txn_id_;
}

uint64_t PagedStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entry_count_;
}

Result<PagedStore::IntegrityReport> PagedStore::CheckIntegrity() {
  std::lock_guard<std::mutex> lock(mutex_);
  IntegrityReport report;
  report.txn_id = txn_id_;
  report.pages_total = pager_->PageCount();
  report.pages_reachable = 2;  // the meta slots
  report.pages_free = free_.size() + pending_free_.size();
  StoreNodeIo io(this);

  auto record_error = [&](const Status& status) {
    ++report.torn_pages;
    report.errors.push_back(status.ToString());
  };

  std::vector<uint64_t> index_pages;
  Status walked = BTreeCollectPages(io, root_, &index_pages);
  report.pages_reachable += index_pages.size();
  if (!walked.ok()) {
    record_error(walked);
    return report;
  }

  std::vector<std::pair<std::string, uint64_t>> entries;
  Status iterated =
      BTreeIterate(io, root_, [&](std::string_view key, uint64_t head) {
        entries.emplace_back(std::string(key), head);
        return Status::OK();
      });
  if (!iterated.ok()) record_error(iterated);
  report.entries = entries.size();

  for (const auto& [key, head] : entries) {
    // Count the chain's pages, then verify the record end to end
    // (page CRCs, chunk reassembly, decompression, raw CRC).
    uint64_t page_id = head;
    uint64_t hops = 0;
    while (page_id != 0 && ++hops <= report.pages_total) {
      ++report.pages_reachable;
      Result<Page> page = FetchPage(page_id);
      if (!page.ok()) break;
      page_id = page->next_page;
    }
    Result<std::string> value = ReadRecordChain(head);
    if (!value.ok()) {
      record_error(Status::InvalidArgument(
          "record \"" + key + "\": " + value.status().ToString()));
    }
  }

  report.pages_reachable += spill_pages_.size();
  for (uint64_t spill : spill_pages_) {
    Result<Page> page = FetchPage(spill);
    if (!page.ok()) record_error(page.status());
  }
  return report;
}

}  // namespace store
}  // namespace fairclean
