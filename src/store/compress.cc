#include "store/compress.h"

#include <cstdint>
#include <vector>

namespace fairclean {
namespace store {

namespace {

constexpr size_t kWindow = 4096;       // 12-bit distance
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field

inline uint32_t Hash3(const unsigned char* p) {
  // Multiplicative hash of a 3-byte prefix into 13 bits.
  uint32_t v = static_cast<uint32_t>(p[0]) |
               (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> 19;
}

}  // namespace

std::string LzssCompress(std::string_view raw) {
  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(raw.data());
  const size_t n = raw.size();
  std::string out;
  out.reserve(n / 2 + 16);

  // head[h] = most recent position with hash h; chain[pos % kWindow] = the
  // previous position sharing that hash. Single chain walk bounded to keep
  // compression O(n) in the worst case.
  std::vector<int64_t> head(1u << 13, -1);
  std::vector<int64_t> chain(kWindow, -1);

  size_t flag_at = 0;  // position of the current group's flag byte
  int flag_bit = 8;    // 8 = need a fresh flag byte
  unsigned char flag = 0;

  auto begin_item = [&](bool literal) {
    if (flag_bit == 8) {
      flag_at = out.size();
      out.push_back('\0');
      flag = 0;
      flag_bit = 0;
    }
    if (literal) flag = static_cast<unsigned char>(flag | (1u << flag_bit));
    out[flag_at] = static_cast<char>(flag);
    ++flag_bit;
  };

  size_t pos = 0;
  while (pos < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      uint32_t h = Hash3(data + pos);
      int64_t candidate = head[h];
      for (int probes = 0; probes < 16 && candidate >= 0; ++probes) {
        size_t dist = pos - static_cast<size_t>(candidate);
        if (dist == 0 || dist > kWindow) break;
        size_t len = 0;
        size_t limit = n - pos < kMaxMatch ? n - pos : kMaxMatch;
        const unsigned char* a = data + candidate;
        const unsigned char* b = data + pos;
        while (len < limit && a[len] == b[len]) ++len;
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_dist = dist;
          if (len == kMaxMatch) break;
        }
        candidate = chain[static_cast<size_t>(candidate) % kWindow];
      }
    }

    auto index_pos = [&](size_t p) {
      if (p + kMinMatch <= n) {
        uint32_t h = Hash3(data + p);
        chain[p % kWindow] = head[h];
        head[h] = static_cast<int64_t>(p);
      }
    };

    if (best_len >= kMinMatch) {
      begin_item(false);
      // token: dddddddd ddddllll (12-bit distance - 1, 4-bit len - min).
      uint16_t token = static_cast<uint16_t>(((best_dist - 1) << 4) |
                                             (best_len - kMinMatch));
      out.push_back(static_cast<char>(token >> 8));
      out.push_back(static_cast<char>(token & 0xff));
      for (size_t i = 0; i < best_len; ++i) index_pos(pos + i);
      pos += best_len;
    } else {
      begin_item(true);
      out.push_back(static_cast<char>(data[pos]));
      index_pos(pos);
      ++pos;
    }
    if (flag_bit == 8) flag_bit = 8;  // next item starts a new group
  }
  return out;
}

Result<std::string> LzssDecompress(std::string_view compressed,
                                   size_t raw_size) {
  std::string out;
  out.reserve(raw_size);
  size_t pos = 0;
  const size_t n = compressed.size();
  while (pos < n && out.size() < raw_size) {
    unsigned char flag = static_cast<unsigned char>(compressed[pos++]);
    for (int bit = 0; bit < 8 && out.size() < raw_size; ++bit) {
      if (pos >= n) {
        return Status::InvalidArgument("lzss stream truncated mid-group");
      }
      if (flag & (1u << bit)) {
        out.push_back(compressed[pos++]);
      } else {
        if (pos + 2 > n) {
          return Status::InvalidArgument("lzss stream truncated mid-token");
        }
        uint16_t token = static_cast<uint16_t>(
            (static_cast<unsigned char>(compressed[pos]) << 8) |
            static_cast<unsigned char>(compressed[pos + 1]));
        pos += 2;
        size_t dist = (token >> 4) + 1;
        size_t len = (token & 0xf) + kMinMatch;
        if (dist > out.size()) {
          return Status::InvalidArgument("lzss match before stream start");
        }
        size_t from = out.size() - dist;
        for (size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
      }
    }
  }
  if (out.size() != raw_size) {
    return Status::InvalidArgument(
        "lzss decompressed size mismatch: expected " +
        std::to_string(raw_size) + ", got " + std::to_string(out.size()));
  }
  return out;
}

}  // namespace store
}  // namespace fairclean
