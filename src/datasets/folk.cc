#include <cstdint>
#include <vector>

#include "common/check.h"
#include "datasets/gen_util.h"
#include "datasets/generator.h"

namespace fairclean {

namespace {

using internal_datasets::Clamp;
using internal_datasets::MakeCategorical;
using internal_datasets::RoundedNormal;
using internal_datasets::Sigmoid;

const std::vector<std::string> kSexDict = {"male", "female"};
const std::vector<std::string> kRaceDict = {"white", "black", "asian",
                                            "other"};
const std::vector<std::string> kOccpDict = {
    "management", "business",  "computer", "engineering", "healthcare",
    "education",  "sales",     "office",   "construction", "production"};
const std::vector<std::string> kCowDict = {
    "private-profit", "private-nonprofit", "local-gov", "state-gov",
    "federal-gov",    "self-employed",     "family-business", "unemployed"};
const std::vector<std::string> kMarDict = {"married", "widowed", "divorced",
                                           "separated", "never-married"};

}  // namespace

Result<GeneratedDataset> MakeFolkDataset(size_t num_rows, Rng* rng) {
  if (num_rows == 0) num_rows = DefaultRowCount("folk");
  size_t n = num_rows;

  std::vector<int32_t> sex(n), race(n), occp(n), cow(n), mar(n);
  std::vector<double> agep(n), schl(n), wkhp(n), label(n);
  std::vector<int> true_labels(n);

  for (size_t i = 0; i < n; ++i) {
    sex[i] = rng->Bernoulli(0.5) ? 0 : 1;  // 0 = male (privileged)
    race[i] =
        static_cast<int32_t>(rng->Categorical({0.60, 0.06, 0.16, 0.18}));
    bool male = sex[i] == 0;
    bool white = race[i] == 0;
    double adv = 0.5 * (male ? 1.0 : 0.0) + 0.5 * (white ? 1.0 : 0.0);

    agep[i] = Clamp(std::round(16.0 + 78.0 * internal_datasets::Beta(
                                           rng, 1.4, 1.9)),
                    16.0, 94.0);
    schl[i] = RoundedNormal(rng, 16.0 + 1.2 * adv, 4.0, 1.0, 24.0);
    bool minor = agep[i] < 18.0;

    if (minor) {
      // Structural N/A: minors have no occupation / class of worker. This
      // is the folk datasheet semantics the paper's Section VI deep dive
      // highlights — dummy imputation lets a model learn the N/A category.
      occp[i] = Column::kMissingCode;
      cow[i] = Column::kMissingCode;
      wkhp[i] = 0.0;
    } else {
      bool professional = schl[i] >= 18.0;
      occp[i] = static_cast<int32_t>(
          professional
              ? rng->Categorical(
                    {0.18, 0.14, 0.14, 0.10, 0.14, 0.12, 0.08, 0.06, 0.02,
                     0.02})
              : rng->Categorical(
                    {0.04, 0.04, 0.03, 0.03, 0.06, 0.05, 0.15, 0.20, 0.18,
                     0.22}));
      cow[i] = static_cast<int32_t>(rng->Categorical(
          {0.58, 0.07, 0.08, 0.05, 0.03, 0.09, 0.02, 0.08}));
      wkhp[i] = RoundedNormal(rng, 36.0 + 3.0 * (male ? 1.0 : 0.0), 12.0,
                              1.0, 99.0);
    }

    double married_p = Clamp(0.012 * (agep[i] - 18.0), 0.0, 0.62);
    if (rng->Bernoulli(married_p)) {
      mar[i] = 0;
    } else {
      mar[i] =
          1 + static_cast<int32_t>(rng->Categorical({0.08, 0.22, 0.05, 0.65}));
    }

    // Label: total income above 50k (replicating the adult task).
    double z = -1.4 + 0.23 * (schl[i] - 16.0) + 0.045 * (wkhp[i] - 36.0) +
               0.045 * (agep[i] - 42.0) -
               0.0011 * (agep[i] - 42.0) * (agep[i] - 42.0) +
               0.3 * (male ? 1.0 : 0.0) + 0.25 * (white ? 1.0 : 0.0) +
               rng->Normal(0.0, 0.5);
    if (minor) z -= 4.0;
    int true_label = rng->Bernoulli(Sigmoid(z)) ? 1 : 0;
    true_labels[i] = true_label;

    // Light, mildly asymmetric label noise.
    int observed = true_label;
    if (true_label == 1) {
      if (rng->Bernoulli(0.03 + 0.02 * (1.0 - adv))) observed = 0;
    } else {
      if (rng->Bernoulli(0.025)) observed = 1;
    }
    label[i] = observed;

    // Group-correlated missingness on top of the structural N/As. folk's
    // occupation channel runs the other way around than adult's: the
    // *privileged* group's successes go unrecorded (high earners skip the
    // occupation question), so the dirty protocol drops privileged
    // positives and the repaired model regains them — recall of the
    // privileged group rises and the single-attribute gaps widen, the
    // paper's "cleaning worsens EO" pattern. The class-of-worker channel
    // keeps the intersectional story (disadvantaged successes unrecorded).
    // Tuple-level missing rates remain higher for the disadvantaged group
    // (RQ1) because COW/WKHP missingness outweighs the OCCP channel.
    int dis_axes = (male ? 0 : 1) + (white ? 0 : 1);
    double p_occp_missing =
        dis_axes == 0 ? (observed == 1 ? 0.34 : 0.04) : 0.04;
    double p_cow_missing =
        dis_axes == 2 ? (observed == 1 ? 0.60 : 0.06)
                      : (dis_axes == 1 ? 0.15 : 0.03);
    if (!minor && occp[i] != Column::kMissingCode &&
        rng->Bernoulli(p_occp_missing)) {
      occp[i] = Column::kMissingCode;
    }
    if (!minor && cow[i] != Column::kMissingCode &&
        rng->Bernoulli(p_cow_missing)) {
      cow[i] = Column::kMissingCode;
    }
    double p_wkhp_missing =
        (wkhp[i] > 45.0 ? 0.12 : 0.02) + 0.04 * dis_axes;
    if (rng->Bernoulli(p_wkhp_missing)) {
      wkhp[i] = std::nan("");
    }
  }

  DataFrame frame;
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("AGEP", std::move(agep))));
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("SCHL", std::move(schl))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("OCCP", kOccpDict, std::move(occp))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("COW", kCowDict, std::move(cow))));
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("WKHP", std::move(wkhp))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("MAR", kMarDict, std::move(mar))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("SEX", kSexDict, std::move(sex))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("RAC1P", kRaceDict, std::move(race))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("PINCP_50K", std::move(label))));

  GeneratedDataset dataset;
  dataset.frame = std::move(frame);
  dataset.true_labels = std::move(true_labels);
  dataset.spec.name = "folk";
  dataset.spec.source = "census";
  dataset.spec.label = "PINCP_50K";
  dataset.spec.drop_variables = {"SEX", "RAC1P"};
  dataset.spec.error_types = {"missing_values", "outliers", "mislabels"};
  dataset.spec.sensitive_attributes = {
      {"sex", GroupPredicate::CategoryEq("SEX", "male")},
      {"race", GroupPredicate::CategoryEq("RAC1P", "white")},
  };
  dataset.spec.intersectional = true;
  return dataset;
}

}  // namespace fairclean
