#ifndef FAIRCLEAN_DATASETS_GEN_UTIL_H_
#define FAIRCLEAN_DATASETS_GEN_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/column.h"

namespace fairclean {
namespace internal_datasets {

inline double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

inline double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

/// Clamped, rounded normal draw — the workhorse for integer-ish columns
/// like age or hours-per-week.
inline double RoundedNormal(Rng* rng, double mean, double stddev, double lo,
                            double hi) {
  return Clamp(std::round(rng->Normal(mean, stddev)), lo, hi);
}

/// Beta(a, b) draw via two gamma draws.
inline double Beta(Rng* rng, double a, double b) {
  std::gamma_distribution<double> ga(a, 1.0);
  std::gamma_distribution<double> gb(b, 1.0);
  double x = ga(rng->engine());
  double y = gb(rng->engine());
  if (x + y == 0.0) return 0.5;
  return x / (x + y);
}

/// Convenience builder for a categorical column with a fixed dictionary.
inline Column MakeCategorical(std::string name,
                              std::vector<std::string> dictionary,
                              std::vector<int32_t> codes) {
  return Column::Categorical(std::move(name), std::move(codes),
                             std::move(dictionary));
}

}  // namespace internal_datasets
}  // namespace fairclean

#endif  // FAIRCLEAN_DATASETS_GEN_UTIL_H_
