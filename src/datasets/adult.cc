#include <cstdint>
#include <vector>

#include "common/check.h"
#include "datasets/gen_util.h"
#include "datasets/generator.h"

namespace fairclean {

namespace {

using internal_datasets::Beta;
using internal_datasets::Clamp;
using internal_datasets::MakeCategorical;
using internal_datasets::RoundedNormal;
using internal_datasets::Sigmoid;

const std::vector<std::string> kSexDict = {"male", "female"};
const std::vector<std::string> kRaceDict = {"white", "black", "asian",
                                            "amer-indian", "other"};
const std::vector<std::string> kWorkclassDict = {
    "private", "self-emp", "local-gov", "federal-gov", "unemployed", "other"};
const std::vector<std::string> kOccupationDict = {
    "exec-managerial", "prof-specialty", "tech-support", "sales",
    "craft-repair",    "adm-clerical",   "transport",    "service"};
const std::vector<std::string> kMaritalDict = {
    "married", "never-married", "divorced", "separated", "widowed"};

}  // namespace

Result<GeneratedDataset> MakeAdultDataset(size_t num_rows, Rng* rng) {
  if (num_rows == 0) num_rows = DefaultRowCount("adult");
  size_t n = num_rows;

  std::vector<int32_t> sex(n), race(n), workclass(n), occupation(n),
      marital(n);
  std::vector<double> age(n), education(n), hours(n), capital_gain(n),
      capital_loss(n), income(n);
  std::vector<int> true_labels(n);

  for (size_t i = 0; i < n; ++i) {
    sex[i] = rng->Bernoulli(0.67) ? 0 : 1;  // 0 = male (privileged)
    race[i] = static_cast<int32_t>(
        rng->Categorical({0.78, 0.10, 0.06, 0.03, 0.03}));
    bool male = sex[i] == 0;
    bool white = race[i] == 0;
    // Latent socioeconomic advantage in [0, 1]: the mechanism through which
    // group membership correlates with features, labels, and data quality.
    double adv = (0.55 * (male ? 1.0 : 0.0) + 0.45 * (white ? 1.0 : 0.0));

    age[i] = RoundedNormal(rng, 38.0 + 3.0 * adv, 13.0, 17.0, 90.0);
    education[i] = RoundedNormal(rng, 9.5 + 1.6 * adv, 2.6, 1.0, 16.0);
    hours[i] =
        RoundedNormal(rng, 38.0 + 4.0 * (male ? 1.0 : 0.0), 12.0, 1.0, 99.0);

    double employed_weight = 0.92 + 0.04 * adv;
    workclass[i] = static_cast<int32_t>(rng->Categorical(
        {0.62 * employed_weight, 0.10 * employed_weight,
         0.09 * employed_weight, 0.04 * employed_weight,
         1.02 - employed_weight, 0.05}));
    bool professional = education[i] >= 12.0;
    occupation[i] = static_cast<int32_t>(
        professional
            ? rng->Categorical({0.26, 0.28, 0.10, 0.16, 0.06, 0.08, 0.02,
                                0.04})
            : rng->Categorical({0.04, 0.04, 0.05, 0.12, 0.25, 0.16, 0.13,
                                0.21}));
    double married_p = Clamp(0.25 + 0.008 * (age[i] - 20.0) + 0.15 * adv,
                             0.05, 0.85);
    if (rng->Bernoulli(married_p)) {
      marital[i] = 0;
    } else {
      marital[i] =
          1 + static_cast<int32_t>(rng->Categorical({0.55, 0.25, 0.12, 0.08}));
    }

    // Heavy-tailed capital columns: the legitimate extremes that univariate
    // outlier detectors flag (privileged groups hold nonzero capital gains
    // more often, producing the flag-rate disparity of Fig. 1).
    capital_gain[i] = rng->Bernoulli(0.05 + 0.10 * adv)
                          ? std::round(rng->LogNormal(8.0, 1.6))
                          : 0.0;
    capital_loss[i] = rng->Bernoulli(0.03 + 0.035 * adv)
                          ? std::round(rng->LogNormal(7.3, 0.5))
                          : 0.0;

    // True label: earns more than 50k.
    double z = -2.55 + 0.17 * (education[i] - 9.5) +
               0.045 * (age[i] - 38.0) -
               0.0011 * (age[i] - 38.0) * (age[i] - 38.0) +
               0.024 * (hours[i] - 38.0) +
               (capital_gain[i] > 5000.0 ? 0.9 + 1.4 * (1.0 - adv) : 0.0) +
               0.5 * (male ? 1.0 : 0.0) + 0.4 * (white ? 1.0 : 0.0) +
               (marital[i] == 0 ? 0.55 : 0.0) + rng->Normal(0.0, 0.4);
    int true_label = rng->Bernoulli(Sigmoid(z)) ? 1 : 0;
    true_labels[i] = true_label;

    // Asymmetric label noise: deserving members of disadvantaged groups are
    // more likely recorded below 50k (historical under-reporting), while
    // privileged negatives are occasionally inflated.
    int observed = true_label;
    if (true_label == 1) {
      double flip = 0.05 + 0.06 * (1.0 - adv);
      if (rng->Bernoulli(flip)) observed = 0;
    } else {
      double flip = 0.035 + 0.025 * adv;
      if (rng->Bernoulli(flip)) observed = 1;
    }
    income[i] = observed;

    // Group- and outcome-correlated missingness (MNAR). Disadvantaged
    // groups have far higher missing rates (the paper's RQ1 finding), but
    // the *kind* of record that goes missing differs with how many axes of
    // disadvantage apply: for singly-disadvantaged people (white women,
    // black men) mostly negative-outcome records lack workclass/occupation,
    // while for the multiply-burdened intersectional group (black women)
    // it is the successes that go unrecorded. Dropping incomplete tuples
    // (the dirty protocol) therefore biases the model in opposite
    // directions for the single-attribute and the intersectional group —
    // which reproduces the paper's finding that cleaning missing values
    // worsens single-attribute equal opportunity while improving the
    // intersectional metrics.
    // The two mechanisms live in different columns so that dummy imputation
    // can learn them separately (the Section VI finding on dummy
    // imputation): workclass drops out of negative records of
    // singly-disadvantaged people, occupation out of positive records of
    // the intersectionally disadvantaged.
    int dis_axes = (male ? 0 : 1) + (white ? 0 : 1);
    double p_workclass_missing =
        dis_axes >= 1 ? (observed == 0 ? 0.60 : 0.04) : 0.05;
    double p_occupation_missing =
        dis_axes == 2 ? (observed == 1 ? 0.75 : 0.05) : 0.04;
    if (rng->Bernoulli(p_workclass_missing)) {
      workclass[i] = Column::kMissingCode;
    }
    if (rng->Bernoulli(p_occupation_missing)) {
      occupation[i] = Column::kMissingCode;
    }
    // Numeric missingness depends on the (high) value itself, so mean /
    // median / mode imputation fill in systematically different values.
    if (rng->Bernoulli(hours[i] > 45.0 ? 0.22 : 0.04)) {
      hours[i] = std::nan("");
    }
  }

  DataFrame frame;
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("age", std::move(age))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("workclass", kWorkclassDict, std::move(workclass))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("education_num", std::move(education))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("marital_status", kMaritalDict, std::move(marital))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("occupation", kOccupationDict, std::move(occupation))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("hours_per_week", std::move(hours))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("capital_gain", std::move(capital_gain))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("capital_loss", std::move(capital_loss))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("sex", kSexDict, std::move(sex))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("race", kRaceDict, std::move(race))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("income", std::move(income))));

  GeneratedDataset dataset;
  dataset.frame = std::move(frame);
  dataset.true_labels = std::move(true_labels);
  dataset.spec.name = "adult";
  dataset.spec.source = "census";
  dataset.spec.label = "income";
  dataset.spec.drop_variables = {"sex", "race"};
  dataset.spec.error_types = {"missing_values", "outliers", "mislabels"};
  dataset.spec.sensitive_attributes = {
      {"sex", GroupPredicate::CategoryEq("sex", "male")},
      {"race", GroupPredicate::CategoryEq("race", "white")},
  };
  dataset.spec.intersectional = true;
  return dataset;
}

}  // namespace fairclean
