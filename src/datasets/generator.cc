#include "datasets/generator.h"

#include "obs/trace.h"

namespace fairclean {

Result<GeneratedDataset> MakeDataset(const std::string& name, size_t num_rows,
                                     Rng* rng) {
  obs::TraceSpan span("datasets", [&] { return "MakeDataset " + name; });
  if (name == "adult") return MakeAdultDataset(num_rows, rng);
  if (name == "folk") return MakeFolkDataset(num_rows, rng);
  if (name == "credit") return MakeCreditDataset(num_rows, rng);
  if (name == "german") return MakeGermanDataset(num_rows, rng);
  if (name == "heart") return MakeHeartDataset(num_rows, rng);
  return Status::NotFound("unknown dataset: " + name);
}

std::vector<std::string> AllDatasetNames() {
  return {"adult", "folk", "credit", "german", "heart"};
}

size_t DefaultRowCount(const std::string& name) {
  // Scaled-down stand-ins for the Table I row counts (the paper samples
  // 15,000 records per run anyway); german keeps its real size of 1,000.
  if (name == "adult") return 12000;
  if (name == "folk") return 15000;
  if (name == "credit") return 12000;
  if (name == "german") return 1000;
  if (name == "heart") return 14000;
  return 10000;
}

}  // namespace fairclean
