#include <cstdint>
#include <vector>

#include "common/check.h"
#include "datasets/gen_util.h"
#include "datasets/generator.h"

namespace fairclean {

namespace {

using internal_datasets::Beta;
using internal_datasets::Clamp;
using internal_datasets::RoundedNormal;
using internal_datasets::Sigmoid;

// Geometric-ish count of past-due events with success probability p.
int32_t PastDueCount(Rng* rng, double p) {
  int32_t count = 0;
  while (count < 12 && rng->Bernoulli(p)) ++count;
  return count;
}

}  // namespace

Result<GeneratedDataset> MakeCreditDataset(size_t num_rows, Rng* rng) {
  if (num_rows == 0) num_rows = DefaultRowCount("credit");
  size_t n = num_rows;

  std::vector<double> util(n), age(n), late30(n), debt_ratio(n), income(n),
      open_lines(n), late90(n), real_estate(n), late60(n), dependents(n),
      label(n);
  std::vector<int> true_labels(n);

  for (size_t i = 0; i < n; ++i) {
    age[i] = Clamp(std::round(21.0 + 64.0 * Beta(rng, 1.5, 2.2)), 21.0, 95.0);
    bool older = age[i] > 30.0;  // privileged group in the lending context

    // Latent financial stability improves with age.
    double stability = 0.35 * (older ? 1.0 : 0.0) +
                       0.01 * Clamp(age[i] - 30.0, 0.0, 30.0) +
                       rng->Normal(0.0, 0.8);

    // Revolving utilization: mostly in [0, 1.1], but ~1% of rows carry the
    // absurd magnitudes present in the real GiveMeSomeCredit file — the
    // legitimate-looking recording artifacts that IQR flags en masse.
    double true_util = Clamp(Beta(rng, 1.1, 2.6) * 1.15 - 0.12 * stability,
                             0.0, 1.3);
    util[i] = rng->Bernoulli(0.012) ? std::round(rng->LogNormal(6.0, 2.0))
                                    : true_util;

    double late_p = Clamp(0.16 - 0.05 * stability + 0.25 * true_util, 0.01,
                          0.7);
    int32_t true_late30 = PastDueCount(rng, late_p);
    int32_t true_late60 = PastDueCount(rng, late_p * 0.45);
    int32_t true_late90 = PastDueCount(rng, late_p * 0.3);

    income[i] = std::round(rng->LogNormal(8.55 + 0.18 * stability, 0.55));
    double true_debt = rng->LogNormal(-1.1 + 0.1 * true_util, 1.0);
    // DebtRatio recording errors (real file: thousands when income absent).
    debt_ratio[i] = rng->Bernoulli(0.015)
                        ? std::round(rng->LogNormal(6.5, 1.2))
                        : true_debt;
    open_lines[i] =
        Clamp(std::round(rng->LogNormal(1.95 + 0.08 * stability, 0.55)), 0.0,
              60.0);
    real_estate[i] =
        Clamp(std::round(rng->LogNormal(-0.3 + 0.4 * stability, 0.8)), 0.0,
              20.0);
    dependents[i] = RoundedNormal(rng, 0.8, 1.1, 0.0, 10.0);

    // Delinquency risk from the *true* quantities: the sentinel/recording
    // errors below corrupt the observation, not the outcome.
    // Past-due history is decisive for young applicants with thin credit
    // files; the same counts matter less for older applicants with long
    // histories. Zeroing the counts during outlier repair therefore hurts
    // the model most on the disadvantaged (young) group.
    double late_weight = older ? 1.0 : 1.9;
    double risk_z = -3.3 + 2.8 * true_util +
                    1.3 * late_weight *
                        std::log1p(static_cast<double>(true_late30)) +
                    1.9 * late_weight *
                        std::log1p(static_cast<double>(true_late90)) +
                    1.4 * late_weight *
                        std::log1p(static_cast<double>(true_late60)) +
                    0.4 * std::log1p(Clamp(true_debt, 0.0, 10.0)) -
                    0.6 * std::log(income[i] / 5200.0 + 0.2) -
                    0.03 * (age[i] - 45.0);
    int delinquent = rng->Bernoulli(Sigmoid(risk_z)) ? 1 : 0;
    int good_credit = 1 - delinquent;
    true_labels[i] = good_credit;

    // Sentinel-value data errors in the past-due counts (the real dataset
    // records 96/98 for "unknown"): a genuine error an outlier repair can
    // actually fix.
    late30[i] = rng->Bernoulli(0.004) ? 98.0 : true_late30;
    late60[i] = rng->Bernoulli(0.003) ? 96.0 : true_late60;
    late90[i] = rng->Bernoulli(0.003) ? 98.0 : true_late90;

    // Mild asymmetric label noise: young good creditors are more likely to
    // be mislabeled as delinquent.
    int observed = good_credit;
    if (good_credit == 1) {
      if (rng->Bernoulli(older ? 0.02 : 0.045)) observed = 0;
    } else {
      if (rng->Bernoulli(0.03)) observed = 1;
    }
    label[i] = observed;
  }

  DataFrame frame;
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("revolving_utilization", std::move(util))));
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("age", std::move(age))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("times_past_due_30_59", std::move(late30))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("debt_ratio", std::move(debt_ratio))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("monthly_income", std::move(income))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("open_credit_lines", std::move(open_lines))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("times_past_due_90", std::move(late90))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("real_estate_loans", std::move(real_estate))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("times_past_due_60_89", std::move(late60))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("dependents", std::move(dependents))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("good_credit", std::move(label))));

  GeneratedDataset dataset;
  dataset.frame = std::move(frame);
  dataset.true_labels = std::move(true_labels);
  dataset.spec.name = "credit";
  dataset.spec.source = "finance";
  dataset.spec.label = "good_credit";
  dataset.spec.drop_variables = {"age"};
  dataset.spec.error_types = {"outliers", "mislabels"};
  dataset.spec.sensitive_attributes = {
      {"age", GroupPredicate::NumericGt("age", 30.0)},
  };
  dataset.spec.intersectional = false;
  return dataset;
}

}  // namespace fairclean
