#ifndef FAIRCLEAN_DATASETS_GENERATOR_H_
#define FAIRCLEAN_DATASETS_GENERATOR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datasets/spec.h"

namespace fairclean {

/// Synthetic stand-ins for the paper's five benchmark datasets.
///
/// The real adult/folk/credit/german/heart files cannot be redistributed or
/// downloaded in this environment, so each generator reproduces the
/// dataset's schema and — more importantly — the error *mechanisms* the
/// paper's findings depend on (see DESIGN.md Section 5): group-correlated
/// missingness, heavy-tailed numeric columns whose extremes trip outlier
/// detectors, measurement-error corruption, and asymmetric label noise
/// where deserving members of disadvantaged groups are more likely recorded
/// as negative. All generators are deterministic given the rng.

/// Census income data modeled on UCI adult: sex/race sensitive attributes,
/// ~24% positive rate, missing workclass/occupation concentrated in the
/// disadvantaged groups, heavy-tailed capital_gain, moderate label noise.
Result<GeneratedDataset> MakeAdultDataset(size_t num_rows, Rng* rng);

/// Census data modeled on folktables ACSIncome (California): sex/race,
/// structural N/A missingness (occupation/class-of-worker missing for
/// minors), mild disparities, light label noise.
Result<GeneratedDataset> MakeFolkDataset(size_t num_rows, Rng* rng);

/// Finance data modeled on GiveMeSomeCredit: age sensitive attribute, no
/// missing values, lognormal utilization/debt columns with sentinel-value
/// data errors, high positive (creditworthy) rate.
Result<GeneratedDataset> MakeCreditDataset(size_t num_rows, Rng* rng);

/// Finance data modeled on German credit: age/sex sensitive attributes
/// (sex derived from a personal_status-style column, as in the paper),
/// small scale, missing values in savings/employment.
Result<GeneratedDataset> MakeGermanDataset(size_t num_rows, Rng* rng);

/// Healthcare data modeled on the cardiovascular-disease dataset: sex/age
/// sensitive attributes, no missing values at all (paper footnote 8),
/// blood-pressure unit/transposition errors, asymmetric label noise (more
/// false negatives for the disadvantaged group).
Result<GeneratedDataset> MakeHeartDataset(size_t num_rows, Rng* rng);

/// Generates a dataset by its paper name with `num_rows` rows (0 = the
/// dataset's scaled default size).
Result<GeneratedDataset> MakeDataset(const std::string& name, size_t num_rows,
                                     Rng* rng);

/// All dataset names in the paper's Table I order.
std::vector<std::string> AllDatasetNames();

/// The scaled-down default row count used when num_rows = 0.
size_t DefaultRowCount(const std::string& name);

}  // namespace fairclean

#endif  // FAIRCLEAN_DATASETS_GENERATOR_H_
