#include "datasets/spec.h"

#include <algorithm>

namespace fairclean {

bool DatasetSpec::HasErrorType(const std::string& error_type) const {
  return std::find(error_types.begin(), error_types.end(), error_type) !=
         error_types.end();
}

Result<SensitiveAttribute> DatasetSpec::SensitiveAttributeByName(
    const std::string& attribute) const {
  for (const SensitiveAttribute& sensitive : sensitive_attributes) {
    if (sensitive.name == attribute) return sensitive;
  }
  return Status::NotFound("no sensitive attribute '" + attribute +
                          "' in dataset " + name);
}

std::vector<std::string> DatasetSpec::FeatureColumns(
    const DataFrame& frame) const {
  std::vector<std::string> out;
  for (const std::string& column : frame.column_names()) {
    if (column == label) continue;
    if (std::find(drop_variables.begin(), drop_variables.end(), column) !=
        drop_variables.end()) {
      continue;
    }
    out.push_back(column);
  }
  return out;
}

}  // namespace fairclean
