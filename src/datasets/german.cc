#include <cstdint>
#include <vector>

#include "common/check.h"
#include "datasets/gen_util.h"
#include "datasets/generator.h"

namespace fairclean {

namespace {

using internal_datasets::Beta;
using internal_datasets::Clamp;
using internal_datasets::MakeCategorical;
using internal_datasets::RoundedNormal;
using internal_datasets::Sigmoid;

const std::vector<std::string> kSexDict = {"male", "female"};
// As in the real dataset, personal_status encodes combinations of sex and
// marital status; the paper derives the sex attribute from it.
const std::vector<std::string> kPersonalStatusDict = {
    "male_single", "male_married", "male_divorced", "female_married_divorced",
    "female_single"};
const std::vector<std::string> kCheckingDict = {"no_account", "lt_0",
                                                "0_to_200", "ge_200"};
const std::vector<std::string> kCreditHistoryDict = {
    "critical", "delayed", "existing_paid", "all_paid", "no_credits"};
const std::vector<std::string> kPurposeDict = {
    "car_new", "car_used", "furniture", "radio_tv", "education", "business"};
const std::vector<std::string> kSavingsDict = {"lt_100", "100_to_500",
                                               "500_to_1000", "ge_1000",
                                               "unknown"};
const std::vector<std::string> kEmploymentDict = {
    "unemployed", "lt_1y", "1_to_4y", "4_to_7y", "ge_7y"};
const std::vector<std::string> kHousingDict = {"rent", "own", "free"};
const std::vector<std::string> kJobDict = {"unskilled", "skilled",
                                           "management", "self_employed"};

}  // namespace

Result<GeneratedDataset> MakeGermanDataset(size_t num_rows, Rng* rng) {
  if (num_rows == 0) num_rows = DefaultRowCount("german");
  size_t n = num_rows;

  std::vector<int32_t> personal_status(n), checking(n), history(n),
      purpose(n), savings(n), employment(n), housing(n), job(n), sex(n);
  std::vector<double> age(n), duration(n), amount(n), installment_rate(n),
      existing_credits(n), dependents(n), label(n);
  std::vector<int> true_labels(n);

  for (size_t i = 0; i < n; ++i) {
    sex[i] = rng->Bernoulli(0.69) ? 0 : 1;  // 0 = male (privileged)
    bool male = sex[i] == 0;
    age[i] = Clamp(std::round(19.0 + 56.0 * Beta(rng, 1.6, 3.2)), 19.0, 75.0);
    bool older = age[i] > 25.0;  // privileged group

    if (male) {
      personal_status[i] =
          static_cast<int32_t>(rng->Categorical({0.55, 0.32, 0.13}));
    } else {
      personal_status[i] =
          3 + static_cast<int32_t>(rng->Categorical({0.67, 0.33}));
    }

    double wealth = 0.35 * (older ? 1.0 : 0.0) + 0.2 * (male ? 1.0 : 0.0) +
                    rng->Normal(0.0, 1.0);

    checking[i] = static_cast<int32_t>(rng->Categorical(
        {0.39, 0.28 - 0.05 * Clamp(wealth, -2.0, 2.0), 0.26,
         0.07 + 0.05 * Clamp(wealth, 0.0, 1.0)}));
    history[i] = static_cast<int32_t>(
        rng->Categorical({0.29, 0.09, 0.53, 0.05, 0.04}));
    purpose[i] = static_cast<int32_t>(
        rng->Categorical({0.23, 0.10, 0.18, 0.28, 0.09, 0.12}));
    savings[i] = static_cast<int32_t>(rng->Categorical(
        {0.60 - 0.1 * Clamp(wealth, -1.0, 1.0), 0.10, 0.06, 0.06, 0.18}));
    double employment_shift = Clamp((age[i] - 19.0) / 20.0, 0.0, 1.0);
    employment[i] = static_cast<int32_t>(rng->Categorical(
        {0.06, 0.17 * (1.3 - employment_shift), 0.34, 0.17,
         0.26 * (0.4 + employment_shift)}));
    housing[i] =
        static_cast<int32_t>(rng->Categorical({0.18, 0.71, 0.11}));
    job[i] = static_cast<int32_t>(
        rng->Categorical({0.22, 0.63, 0.10, 0.05}));

    duration[i] = Clamp(std::round(rng->LogNormal(2.95, 0.45)), 4.0, 72.0);
    amount[i] = std::round(rng->LogNormal(7.85, 0.75));
    installment_rate[i] = 1.0 + std::floor(rng->Uniform(0.0, 4.0));
    existing_credits[i] =
        1.0 + static_cast<double>(rng->Categorical({0.63, 0.31, 0.05, 0.01}));
    dependents[i] = rng->Bernoulli(0.15) ? 2.0 : 1.0;

    double z = 1.05 + 0.5 * wealth - 0.4 * std::log(amount[i] / 2500.0) -
               0.028 * (duration[i] - 20.0) +
               0.25 * (savings[i] >= 2 && savings[i] <= 3 ? 1.0 : 0.0) +
               0.35 * (checking[i] == 0 || checking[i] == 3 ? 1.0 : 0.0) +
               0.2 * (employment[i] >= 3 ? 1.0 : 0.0) -
               0.3 * (history[i] == 0 ? 1.0 : 0.0) +
               rng->Normal(0.0, 0.6);
    int good = rng->Bernoulli(Sigmoid(z)) ? 1 : 0;
    true_labels[i] = good;

    // Mild asymmetric noise: young applicants with good outcomes are more
    // likely to carry a bad recorded label.
    int observed = good;
    if (good == 1) {
      if (rng->Bernoulli(older ? 0.04 : 0.08)) observed = 0;
    } else {
      if (rng->Bernoulli(0.04)) observed = 1;
    }
    label[i] = observed;

    // Missingness pattern where the *privileged* group is flagged more
    // often — german is one of the paper's counterexamples to
    // "disadvantaged groups always have more missing values". Savings of
    // older applicants with good outcomes are the least recorded
    // (long-standing customers are not re-screened), and long durations go
    // unrecorded more often than short ones.
    if (rng->Bernoulli(older ? (observed == 1 ? 0.35 : 0.08)
                             : 0.06)) {
      savings[i] = Column::kMissingCode;
    }
    if (rng->Bernoulli(male ? 0.10 : 0.055)) {
      employment[i] = Column::kMissingCode;
    }
    if (rng->Bernoulli(duration[i] > 30.0 ? 0.12 : 0.035)) {
      duration[i] = std::nan("");
    }
  }

  DataFrame frame;
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("checking_status", kCheckingDict, std::move(checking))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("duration", std::move(duration))));
  FC_RETURN_IF_ERROR(frame.AddColumn(MakeCategorical(
      "credit_history", kCreditHistoryDict, std::move(history))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("purpose", kPurposeDict, std::move(purpose))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("credit_amount", std::move(amount))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("savings", kSavingsDict, std::move(savings))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("employment", kEmploymentDict, std::move(employment))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("installment_rate", std::move(installment_rate))));
  FC_RETURN_IF_ERROR(frame.AddColumn(MakeCategorical(
      "personal_status", kPersonalStatusDict, std::move(personal_status))));
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("age", std::move(age))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      MakeCategorical("housing", kHousingDict, std::move(housing))));
  FC_RETURN_IF_ERROR(frame.AddColumn(
      Column::Numeric("existing_credits", std::move(existing_credits))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("job", kJobDict, std::move(job))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("num_dependents", std::move(dependents))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("sex", kSexDict, std::move(sex))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("credit", std::move(label))));

  GeneratedDataset dataset;
  dataset.frame = std::move(frame);
  dataset.true_labels = std::move(true_labels);
  dataset.spec.name = "german";
  dataset.spec.source = "finance";
  dataset.spec.label = "credit";
  // Listing 1 of the paper: age, personal_status and sex are hidden from
  // the classifier (foreign_worker is removed from the data entirely).
  dataset.spec.drop_variables = {"age", "personal_status", "sex"};
  dataset.spec.error_types = {"missing_values", "outliers", "mislabels"};
  dataset.spec.sensitive_attributes = {
      {"sex", GroupPredicate::CategoryEq("sex", "male")},
      {"age", GroupPredicate::NumericGt("age", 25.0)},
  };
  dataset.spec.intersectional = true;
  return dataset;
}

}  // namespace fairclean
