#include <cstdint>
#include <vector>

#include "common/check.h"
#include "datasets/gen_util.h"
#include "datasets/generator.h"

namespace fairclean {

namespace {

using internal_datasets::Clamp;
using internal_datasets::MakeCategorical;
using internal_datasets::RoundedNormal;
using internal_datasets::Sigmoid;

const std::vector<std::string> kSexDict = {"male", "female"};

}  // namespace

Result<GeneratedDataset> MakeHeartDataset(size_t num_rows, Rng* rng) {
  if (num_rows == 0) num_rows = DefaultRowCount("heart");
  size_t n = num_rows;

  std::vector<int32_t> sex(n);
  std::vector<double> age(n), height(n), weight(n), ap_hi(n), ap_lo(n),
      cholesterol(n), gluc(n), smoke(n), alco(n), active(n), cardio(n);
  std::vector<int> true_labels(n);

  for (size_t i = 0; i < n; ++i) {
    sex[i] = rng->Bernoulli(0.35) ? 0 : 1;  // 0 = male (privileged)
    bool male = sex[i] == 0;
    age[i] = RoundedNormal(rng, 53.0, 7.0, 30.0, 65.0);
    bool older = age[i] > 45.0;  // privileged group in the triage context

    height[i] = RoundedNormal(rng, male ? 170.0 : 161.0, 7.0, 140.0, 205.0);
    weight[i] = Clamp(std::round(rng->Normal(male ? 78.0 : 72.0, 13.0)),
                      40.0, 180.0);

    double true_hi = Clamp(
        std::round(rng->Normal(120.0 + 0.5 * (age[i] - 50.0) +
                                   0.3 * (weight[i] - 74.0),
                               14.0)),
        85.0, 220.0);
    double true_lo =
        Clamp(std::round(0.63 * true_hi + rng->Normal(4.0, 6.0)), 55.0, 130.0);

    cholesterol[i] = 1.0 + static_cast<double>(rng->Categorical(
                               {0.74, 0.14 + 0.002 * (age[i] - 50.0), 0.12}));
    gluc[i] = 1.0 + static_cast<double>(rng->Categorical({0.85, 0.07, 0.08}));
    smoke[i] = rng->Bernoulli(male ? 0.22 : 0.03) ? 1.0 : 0.0;
    alco[i] = rng->Bernoulli(male ? 0.11 : 0.03) ? 1.0 : 0.0;
    active[i] = rng->Bernoulli(0.80) ? 1.0 : 0.0;

    // Disease outcome from the *true* measurements.
    double z = 0.09 * (age[i] - 53.0) + 0.075 * (true_hi - 128.0) +
               0.035 * (weight[i] - 74.0) + 0.8 * (cholesterol[i] - 1.0) +
               0.25 * (gluc[i] - 1.0) + 0.3 * smoke[i] - 0.35 * active[i] +
               rng->Normal(0.0, 0.3);
    int disease = rng->Bernoulli(Sigmoid(z)) ? 1 : 0;
    true_labels[i] = disease;

    // Measurement-error corruption of the blood-pressure columns, mirroring
    // the implausible ap_hi/ap_lo values in the real cardio file: decimal
    // unit slips, transposed readings, sign errors. These are genuine
    // errors — the observation is wrong, the outcome is not.
    ap_hi[i] = true_hi;
    ap_lo[i] = true_lo;
    double corruption = rng->Uniform();
    if (corruption < 0.012) {
      ap_hi[i] = true_hi * 10.0;
    } else if (corruption < 0.018) {
      ap_hi[i] = true_lo;
      ap_lo[i] = true_hi;
    } else if (corruption < 0.022) {
      ap_lo[i] = -true_lo;
    }

    // Asymmetric, feature-structured label noise — Section III's heart
    // finding: privileged tuples carry more false-positive noise (0 -> 1),
    // disadvantaged tuples more false-negative noise (1 -> 0). The
    // false-negative noise is concentrated on the clearest disease cases
    // of the disadvantaged group (severe symptoms dismissed), which makes
    // the errors detectable by confident learning and their repair
    // consequential: in the triage context a false negative withholds
    // priority care from a sick person.
    bool privileged_both = male && older;
    bool disadvantaged_any = !male || !older;
    int observed = disease;
    if (disease == 0) {
      double flip = 0.07 + (privileged_both ? (z < -0.5 ? 0.35 : 0.04)
                                            : 0.0);
      if (rng->Bernoulli(flip)) observed = 1;
    } else {
      double flip = 0.07 + (disadvantaged_any ? (z > 0.8 ? 0.30 : 0.05)
                                              : 0.0);
      if (rng->Bernoulli(flip)) observed = 0;
    }
    cardio[i] = observed;
  }

  DataFrame frame;
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("age", std::move(age))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(MakeCategorical("gender", kSexDict, std::move(sex))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("height", std::move(height))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("weight", std::move(weight))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("ap_hi", std::move(ap_hi))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("ap_lo", std::move(ap_lo))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("cholesterol", std::move(cholesterol))));
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("gluc", std::move(gluc))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("smoke", std::move(smoke))));
  FC_RETURN_IF_ERROR(frame.AddColumn(Column::Numeric("alco", std::move(alco))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("active", std::move(active))));
  FC_RETURN_IF_ERROR(
      frame.AddColumn(Column::Numeric("cardio", std::move(cardio))));

  GeneratedDataset dataset;
  dataset.frame = std::move(frame);
  dataset.true_labels = std::move(true_labels);
  dataset.spec.name = "heart";
  dataset.spec.source = "healthcare";
  dataset.spec.label = "cardio";
  dataset.spec.drop_variables = {"gender", "age"};
  // No missing values at all (paper footnote 8).
  dataset.spec.error_types = {"outliers", "mislabels"};
  dataset.spec.sensitive_attributes = {
      {"sex", GroupPredicate::CategoryEq("gender", "male")},
      {"age", GroupPredicate::NumericGt("age", 45.0)},
  };
  dataset.spec.intersectional = true;
  return dataset;
}

}  // namespace fairclean
