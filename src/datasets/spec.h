#ifndef FAIRCLEAN_DATASETS_SPEC_H_
#define FAIRCLEAN_DATASETS_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataframe.h"
#include "fairness/group.h"

namespace fairclean {

/// A sensitive attribute together with the predicate defining its
/// privileged group, e.g. {"age", age > 25}.
struct SensitiveAttribute {
  std::string name;
  GroupPredicate privileged;
};

/// Declarative description of a benchmark dataset — the C++ analog of the
/// paper's Listing 1 (CleanML dataset definition extended with
/// privileged_groups). The experiment framework derives everything it needs
/// (feature columns, group assignments, applicable error types) from this
/// structure.
struct DatasetSpec {
  std::string name;
  /// Source domain ("census", "finance", "healthcare").
  std::string source;
  /// Name of the binary label column; 1 is the desirable outcome.
  std::string label;
  /// Columns hidden from the classifier (sensitive attributes and their
  /// raw encodings, as in the paper).
  std::vector<std::string> drop_variables;
  /// Error types applicable to this dataset
  /// ("missing_values", "outliers", "mislabels").
  std::vector<std::string> error_types;
  /// Sensitive attributes with privileged-group predicates.
  std::vector<SensitiveAttribute> sensitive_attributes;
  /// True if the paper analyses this dataset intersectionally (first two
  /// sensitive attributes combined).
  bool intersectional = false;

  /// True if `error_type` applies to this dataset.
  bool HasErrorType(const std::string& error_type) const;

  /// The sensitive attribute entry with the given name.
  Result<SensitiveAttribute> SensitiveAttributeByName(
      const std::string& attribute) const;

  /// Columns of `frame` visible to the classifier: everything except the
  /// label and drop_variables.
  std::vector<std::string> FeatureColumns(const DataFrame& frame) const;
};

/// A generated dataset: the data plus its declarative spec.
struct GeneratedDataset {
  DataFrame frame;
  DatasetSpec spec;
  /// Ground-truth labels before the generator's label noise was applied
  /// (same row order as `frame`). Only the generator knows these — the
  /// experiment pipeline never sees them; they exist so invariant tests can
  /// audit the injected noise rates against the spec'd mechanisms.
  std::vector<int> true_labels;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DATASETS_SPEC_H_
