#ifndef FAIRCLEAN_OBS_LOG_H_
#define FAIRCLEAN_OBS_LOG_H_

#include <atomic>
#include <string>

namespace fairclean {
namespace obs {

/// Severity levels of the structured logger. The active minimum level comes
/// from FAIRCLEAN_LOG (debug|info|warn|error|off); anything below it is a
/// single relaxed atomic load and a branch, so disabled logging costs
/// nothing measurable.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Parses a level name ("debug", "info", "warn"/"warning", "error", "off");
/// unknown names return `fallback`.
LogLevel LogLevelFromString(const std::string& name, LogLevel fallback);

/// Short fixed-width tag for a level ("debug", "info ", "warn ", "error").
const char* LogLevelName(LogLevel level);

/// The active minimum level.
LogLevel CurrentLogLevel();

/// Overrides the active minimum level (tests, CLI flags).
void SetLogLevel(LogLevel level);

/// Re-reads FAIRCLEAN_LOG; when the variable is unset or unparsable the
/// level becomes `default_level`. Benches call this with kInfo so their
/// historical progress lines stay on by default while library consumers
/// (tests) default to kWarn.
void InitLogLevelFromEnv(LogLevel default_level);

namespace internal {
extern std::atomic<int> g_min_log_level;
}  // namespace internal

/// True when a message at `level` would be emitted.
inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         internal::g_min_log_level.load(std::memory_order_relaxed);
}

/// Emits one structured line to stderr:
///   [fairclean][warn ][+12.345s] site: message
/// `site` is a short machine-greppable event name ("retry", "cache",
/// "resume"); the message is printf-formatted. Never call directly on a hot
/// path — use the FC_LOG_* macros, which skip argument evaluation when the
/// level is disabled.
void LogWrite(LogLevel level, const char* site, const char* format, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace obs
}  // namespace fairclean

#define FC_LOG_IMPL(level, site, ...)                        \
  do {                                                       \
    if (::fairclean::obs::LogEnabled(level)) {               \
      ::fairclean::obs::LogWrite(level, site, __VA_ARGS__);  \
    }                                                        \
  } while (0)

#define FC_LOG_DEBUG(site, ...) \
  FC_LOG_IMPL(::fairclean::obs::LogLevel::kDebug, site, __VA_ARGS__)
#define FC_LOG_INFO(site, ...) \
  FC_LOG_IMPL(::fairclean::obs::LogLevel::kInfo, site, __VA_ARGS__)
#define FC_LOG_WARN(site, ...) \
  FC_LOG_IMPL(::fairclean::obs::LogLevel::kWarn, site, __VA_ARGS__)
#define FC_LOG_ERROR(site, ...) \
  FC_LOG_IMPL(::fairclean::obs::LogLevel::kError, site, __VA_ARGS__)

#endif  // FAIRCLEAN_OBS_LOG_H_
