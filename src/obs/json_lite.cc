#include "obs/json_lite.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace fairclean {
namespace obs {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Fail("invalid literal");
    }
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return false;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object_items.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) return false;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array_items.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned int code = 0;
          if (!ParseHex4(&code)) return false;
          AppendUtf8(code, out);
          break;
        }
        default: return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseHex4(unsigned int* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned int value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned int>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned int>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned int>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  // BMP code point -> UTF-8. Surrogates are emitted as U+FFFD; the files
  // this repo writes never contain them.
  static void AppendUtf8(unsigned int code, std::string* out) {
    if (code >= 0xd800 && code <= 0xdfff) code = 0xfffd;
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  if (error != nullptr) error->clear();
  *out = JsonValue();
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : object_items) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string() ? value->string_value
                                                : fallback;
}

bool JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->type == Type::kBool ? value->bool_value
                                                        : fallback;
}

}  // namespace obs
}  // namespace fairclean
