#ifndef FAIRCLEAN_OBS_JSON_LITE_H_
#define FAIRCLEAN_OBS_JSON_LITE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fairclean {
namespace obs {

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the trace and metrics
/// writers so every emitted file is parseable JSON.
std::string JsonEscape(std::string_view text);

/// A parsed JSON value. Deliberately tiny: enough to validate the files
/// this repo emits (trace-event JSON, metrics JSONL) and to aggregate them
/// in tools/trace_summary — not a general-purpose JSON library.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` (one complete JSON value, surrounding whitespace
  /// allowed). On failure returns false and sets `*error` to a message with
  /// a byte offset.
  static bool Parse(std::string_view text, JsonValue* out, std::string* error);

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  /// Object members in document order (duplicate keys preserved).
  std::vector<std::pair<std::string, JsonValue>> object_items;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// First member named `key`, or nullptr (also when not an object).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience accessors with fallbacks for absent/mistyped members.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, const std::string& fallback) const;
  bool BoolOr(std::string_view key, bool fallback) const;
};

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_JSON_LITE_H_
