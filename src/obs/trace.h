#ifndef FAIRCLEAN_OBS_TRACE_H_
#define FAIRCLEAN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

namespace fairclean {
namespace obs {

namespace internal {
/// Bitmask of active span sinks. Instrumentation points read it with one
/// relaxed load; a zero mask is the whole cost of disabled tracing.
extern std::atomic<uint32_t> g_capture_mask;

constexpr uint32_t kCaptureFile = 1u;    ///< FAIRCLEAN_TRACE Chrome JSON file
constexpr uint32_t kCaptureStore = 2u;   ///< in-memory per-trace span store
constexpr uint32_t kCaptureFlight = 4u;  ///< crash flight recorder rings

void SetCaptureBit(uint32_t bit, bool on);
}  // namespace internal

/// The sink bitmask as of now.
inline uint32_t CaptureMask() {
  return internal::g_capture_mask.load(std::memory_order_relaxed);
}

/// True when the trace *file* sink is active (FAIRCLEAN_TRACE / Enable()).
/// Callers that format work only for the trace file key off this; the
/// flight recorder and trace store have their own bits.
inline bool TraceEnabled() {
  return (CaptureMask() & internal::kCaptureFile) != 0;
}

/// True when any span sink (file, trace store, flight recorder) is active.
inline bool SpanCaptureEnabled() { return CaptureMask() != 0; }

/// Span-based tracer emitting Chrome trace-event JSON (the format Perfetto
/// and chrome://tracing load). Activated by FAIRCLEAN_TRACE=<path> at
/// process start, or programmatically via Enable() (tests).
///
/// Threading model: every thread appends completed events to its own
/// buffer behind a thread-local pointer, so concurrently tracing workers
/// never contend on a shared sink (each buffer has a private mutex that is
/// only ever contended by Flush). Spans record at scope exit — a span's
/// constructor just reads the clock; all bookkeeping happens in the
/// destructor on the owning thread.
///
/// Determinism: the tracer only observes. It draws no randomness, changes
/// no control flow, and writes only to its own file, so scores, caches and
/// journals are byte-identical with tracing on or off (enforced by
/// tests/exec/observability_test.cc).
///
/// Spans recorded while a TraceContextScope (trace_context.h) is active on
/// the thread are tagged with that request's trace id — in the trace file
/// as "args":{"trace":"<hex>"} and, when the trace store sink is on, as
/// retained StoredSpans answering the server's `trace` op.
class Tracer {
 public:
  /// Process-wide tracer (constructed on first use; reads FAIRCLEAN_TRACE
  /// and arms the flight recorder from FAIRCLEAN_FLIGHT).
  static Tracer& Global();

  /// Starts tracing into `path` and registers an at-exit flush. Idempotent
  /// re-enable switches the output path.
  void Enable(const std::string& path);

  /// Flushes, writes the file, drops buffered events, and stops tracing.
  void Disable();

  /// Drains all thread buffers and (re)writes the complete trace file.
  /// Safe to call at any time; the file is always valid JSON.
  void Flush();

  /// Microseconds since the trace epoch (first Enable).
  int64_t NowMicros() const;

  /// Records a complete ("ph":"X") event: into the calling thread's file
  /// buffer when the file sink is on, and into the per-trace store when
  /// that sink is on and a trace id is active. `depth` is the span-nesting
  /// depth used to render stored span trees.
  void RecordComplete(const char* category, std::string name, int64_t ts_us,
                      int64_t dur_us, uint32_t depth = 0);

  /// Records an instant ("ph":"i") event, e.g. a fault-injection fire.
  /// Routed to the same sinks as RecordComplete.
  void RecordInstant(const char* category, std::string name);

  /// Names the calling thread in the trace ("worker-2"). Cheap and safe to
  /// call whether or not tracing is (yet) enabled; the name sticks for the
  /// thread's lifetime. Thread-pool workers call this once at start-up so
  /// spans executed on them carry a stable worker tid.
  static void SetCurrentThreadName(const std::string& name);

  /// Small stable tid assigned to the calling thread (1 = first thread that
  /// traced). Exposed for tests.
  static uint32_t CurrentThreadTid();

  /// Labels this whole process in the trace ("shard-2/4") via a
  /// process_name metadata event, so merged multi-process traces attribute
  /// every span to the shard that executed it. Cheap and safe whether or
  /// not tracing is enabled; the last label set before a flush wins.
  static void SetProcessLabel(const std::string& label);

  std::string path() const;

 private:
  Tracer();
  ~Tracer() = delete;  // process-lifetime singleton, flushed via atexit

  struct Impl;
  Impl* impl_;
};

/// RAII span: measures from construction to destruction and records into
/// every active sink on the owning thread. When all sinks are disabled the
/// constructor is a single branch and the name is never materialized; when
/// only the flight recorder is on, dynamic names are likewise skipped —
/// the flight ring keys events by category site, not name.
class TraceSpan {
 public:
  /// Static-name span: FC_TRACE_SPAN("ml", "TuneAndFit").
  TraceSpan(const char* category, const char* name) {
    uint32_t mask = CaptureMask();
    if (mask != 0) Begin(mask, category, name);
  }

  /// Dynamic-name span; the callable (returning std::string) runs only
  /// when a name-carrying sink (file or store) is enabled:
  ///   TraceSpan span("exec", [&] { return StrFormat("repeat r%zu", r); });
  template <typename NameFn,
            typename = std::enable_if_t<
                std::is_invocable_r_v<std::string, NameFn>>>
  TraceSpan(const char* category, NameFn&& name_fn) {
    uint32_t mask = CaptureMask();
    if (mask != 0) {
      Begin(mask, category,
            (mask & (internal::kCaptureFile | internal::kCaptureStore)) != 0
                ? std::forward<NameFn>(name_fn)()
                : std::string());
    }
  }

  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(uint32_t mask, const char* category, std::string name);
  void End();

  bool active_ = false;
  uint32_t mask_ = 0;       // sinks active at Begin
  uint32_t depth_ = 0;      // nesting depth on the owning thread
  uint16_t flight_site_ = 0;
  const char* category_ = nullptr;
  std::string name_;
  int64_t start_us_ = 0;
};

/// Forces the tracer's one-time FAIRCLEAN_TRACE env read and arms the
/// flight recorder. Instrumentation points are pure atomic-load no-ops
/// until the first Tracer::Global() touch, so process entry points (the
/// study driver constructor, bench start-up) call this to guarantee the
/// very first spans are captured.
inline void InitTraceFromEnv() { Tracer::Global(); }

/// Instant event helper with the same disabled-path guarantee as TraceSpan.
inline void TraceInstant(const char* category, const char* name) {
  if ((CaptureMask() &
       (internal::kCaptureFile | internal::kCaptureStore)) != 0) {
    Tracer::Global().RecordInstant(category, name);
  }
}

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_TRACE_H_
