#ifndef FAIRCLEAN_OBS_TRACE_H_
#define FAIRCLEAN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

namespace fairclean {
namespace obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True when a trace sink is active. This is the whole cost of every
/// disabled instrumentation point: one relaxed atomic load and a branch —
/// no clock read, no allocation, no lock.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Span-based tracer emitting Chrome trace-event JSON (the format Perfetto
/// and chrome://tracing load). Activated by FAIRCLEAN_TRACE=<path> at
/// process start, or programmatically via Enable() (tests).
///
/// Threading model: every thread appends completed events to its own
/// buffer behind a thread-local pointer, so concurrently tracing workers
/// never contend on a shared sink (each buffer has a private mutex that is
/// only ever contended by Flush). Spans record at scope exit — a span's
/// constructor just reads the clock; all bookkeeping happens in the
/// destructor on the owning thread.
///
/// Determinism: the tracer only observes. It draws no randomness, changes
/// no control flow, and writes only to its own file, so scores, caches and
/// journals are byte-identical with tracing on or off (enforced by
/// tests/exec/observability_test.cc).
class Tracer {
 public:
  /// Process-wide tracer (constructed on first use; reads FAIRCLEAN_TRACE).
  static Tracer& Global();

  /// Starts tracing into `path` and registers an at-exit flush. Idempotent
  /// re-enable switches the output path.
  void Enable(const std::string& path);

  /// Flushes, writes the file, drops buffered events, and stops tracing.
  void Disable();

  /// Drains all thread buffers and (re)writes the complete trace file.
  /// Safe to call at any time; the file is always valid JSON.
  void Flush();

  /// Microseconds since the trace epoch (first Enable).
  int64_t NowMicros() const;

  /// Records a complete ("ph":"X") event on the calling thread's buffer.
  void RecordComplete(const char* category, std::string name, int64_t ts_us,
                      int64_t dur_us);

  /// Records an instant ("ph":"i") event, e.g. a fault-injection fire.
  void RecordInstant(const char* category, std::string name);

  /// Names the calling thread in the trace ("worker-2"). Cheap and safe to
  /// call whether or not tracing is (yet) enabled; the name sticks for the
  /// thread's lifetime. Thread-pool workers call this once at start-up so
  /// spans executed on them carry a stable worker tid.
  static void SetCurrentThreadName(const std::string& name);

  /// Small stable tid assigned to the calling thread (1 = first thread that
  /// traced). Exposed for tests.
  static uint32_t CurrentThreadTid();

  std::string path() const;

 private:
  Tracer();
  ~Tracer() = delete;  // process-lifetime singleton, flushed via atexit

  struct Impl;
  Impl* impl_;
};

/// RAII span: measures from construction to destruction and records a
/// complete event on the owning thread. When tracing is disabled the
/// constructor is a single branch and the name is never materialized.
class TraceSpan {
 public:
  /// Static-name span: FC_TRACE_SPAN("ml", "TuneAndFit").
  TraceSpan(const char* category, const char* name) {
    if (TraceEnabled()) Begin(category, name);
  }

  /// Dynamic-name span; the callable (returning std::string) runs only
  /// when tracing is enabled:
  ///   TraceSpan span("exec", [&] { return StrFormat("repeat r%zu", r); });
  template <typename NameFn,
            typename = std::enable_if_t<
                std::is_invocable_r_v<std::string, NameFn>>>
  TraceSpan(const char* category, NameFn&& name_fn) {
    if (TraceEnabled()) Begin(category, std::forward<NameFn>(name_fn)());
  }

  ~TraceSpan() {
    if (active_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* category, std::string name);
  void End();

  bool active_ = false;
  const char* category_ = nullptr;
  std::string name_;
  int64_t start_us_ = 0;
};

/// Forces the tracer's one-time FAIRCLEAN_TRACE env read. Instrumentation
/// points are pure atomic-load no-ops until the first Tracer::Global()
/// touch, so process entry points (the study driver constructor, bench
/// start-up) call this to guarantee the very first spans are captured.
inline void InitTraceFromEnv() { Tracer::Global(); }

/// Instant event helper with the same disabled-path guarantee as TraceSpan.
inline void TraceInstant(const char* category, const char* name) {
  if (TraceEnabled()) Tracer::Global().RecordInstant(category, name);
}

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_TRACE_H_
