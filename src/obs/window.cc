#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"

namespace fairclean {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

struct SlidingWindowHistogram::Slice {
  std::atomic<int64_t> epoch{-1};  ///< time slot this slice covers
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{0.0};
  std::atomic<double> max{0.0};
  std::unique_ptr<std::atomic<uint64_t>[]> buckets;
};

SlidingWindowHistogram::SlidingWindowHistogram(std::vector<double> bounds,
                                               double window_s, int slices)
    : bounds_(std::move(bounds)),
      window_s_(window_s > 0.0 ? window_s : 1.0),
      slice_count_(slices < 2 ? 2 : slices) {
  slice_span_s_ = window_s_ / static_cast<double>(slice_count_);
  slices_.reset(new Slice[slice_count_]);
  for (int i = 0; i < slice_count_; ++i) {
    slices_[i].buckets.reset(
        new std::atomic<uint64_t>[bounds_.size() + 1]);
    for (size_t j = 0; j <= bounds_.size(); ++j) {
      slices_[i].buckets[j].store(0, std::memory_order_relaxed);
    }
    slices_[i].min.store(std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
    slices_[i].max.store(-std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
  }
}

SlidingWindowHistogram::~SlidingWindowHistogram() = default;

double SlidingWindowHistogram::NowSeconds() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

SlidingWindowHistogram::Slice* SlidingWindowHistogram::SliceForSlot(
    int64_t slot) {
  Slice& slice =
      slices_[static_cast<size_t>(slot) % static_cast<size_t>(slice_count_)];
  const int64_t current = slice.epoch.load(std::memory_order_acquire);
  if (current == slot) return &slice;
  if (current > slot) return nullptr;  // the slot already rotated away
  {
    std::lock_guard<std::mutex> lock(rotate_mutex_);
    const int64_t rechecked = slice.epoch.load(std::memory_order_relaxed);
    if (rechecked > slot) return nullptr;
    if (rechecked < slot) {
      slice.count.store(0, std::memory_order_relaxed);
      slice.sum.store(0.0, std::memory_order_relaxed);
      slice.min.store(std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
      slice.max.store(-std::numeric_limits<double>::infinity(),
                      std::memory_order_relaxed);
      for (size_t j = 0; j <= bounds_.size(); ++j) {
        slice.buckets[j].store(0, std::memory_order_relaxed);
      }
      slice.epoch.store(slot, std::memory_order_release);
    }
  }
  return &slice;
}

void SlidingWindowHistogram::Observe(double value) {
  ObserveAt(value, NowSeconds());
}

void SlidingWindowHistogram::ObserveAt(double value, double t_s) {
  if (!std::isfinite(value)) {
    internal::DroppedSamplesCounter()->Increment();
    return;
  }
  if (t_s < 0.0) t_s = 0.0;
  const int64_t slot = static_cast<int64_t>(t_s / slice_span_s_);
  Slice* slice = SliceForSlot(slot);
  if (slice == nullptr) {
    // The observation predates every live slice; its window is gone.
    internal::DroppedSamplesCounter()->Increment();
    return;
  }
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  slice->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slice->count.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&slice->sum, value);
  AtomicMinDouble(&slice->min, value);
  AtomicMaxDouble(&slice->max, value);
}

SlidingWindowHistogram::WindowSnapshot SlidingWindowHistogram::Snapshot()
    const {
  return SnapshotAt(NowSeconds());
}

SlidingWindowHistogram::WindowSnapshot SlidingWindowHistogram::SnapshotAt(
    double t_s) const {
  WindowSnapshot snapshot;
  snapshot.window_s = window_s_;
  snapshot.bucket_counts.assign(bounds_.size() + 1, 0);
  if (t_s < 0.0) t_s = 0.0;
  const int64_t newest = static_cast<int64_t>(t_s / slice_span_s_);
  const int64_t oldest = newest - slice_count_ + 1;
  double merged_min = std::numeric_limits<double>::infinity();
  double merged_max = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < slice_count_; ++i) {
    const Slice& slice = slices_[i];
    const int64_t epoch = slice.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > newest) continue;
    const uint64_t slice_count =
        slice.count.load(std::memory_order_relaxed);
    if (slice_count == 0) continue;
    snapshot.count += slice_count;
    snapshot.sum += slice.sum.load(std::memory_order_relaxed);
    merged_min =
        std::min(merged_min, slice.min.load(std::memory_order_relaxed));
    merged_max =
        std::max(merged_max, slice.max.load(std::memory_order_relaxed));
    for (size_t j = 0; j <= bounds_.size(); ++j) {
      snapshot.bucket_counts[j] +=
          slice.buckets[j].load(std::memory_order_relaxed);
    }
  }
  if (snapshot.count > 0) {
    snapshot.min = merged_min;
    snapshot.max = merged_max;
    snapshot.p50 = PercentileFromBuckets(bounds_, snapshot.bucket_counts,
                                         snapshot.count, snapshot.min,
                                         snapshot.max, 50.0);
    snapshot.p95 = PercentileFromBuckets(bounds_, snapshot.bucket_counts,
                                         snapshot.count, snapshot.min,
                                         snapshot.max, 95.0);
    snapshot.p99 = PercentileFromBuckets(bounds_, snapshot.bucket_counts,
                                         snapshot.count, snapshot.min,
                                         snapshot.max, 99.0);
  }
  return snapshot;
}

double DefaultMetricsWindowSeconds() {
  static const double window = [] {
    const char* text = std::getenv("FAIRCLEAN_METRICS_WINDOW_S");
    double value = 60.0;
    if (text != nullptr && text[0] != '\0') {
      char* end = nullptr;
      const double parsed = std::strtod(text, &end);
      if (end != text && std::isfinite(parsed) && parsed > 0.0) {
        value = parsed;
      }
    }
    return std::clamp(value, 1.0, 3600.0);
  }();
  return window;
}

double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& bucket_counts,
                             uint64_t count, double min, double max,
                             double p) {
  if (count == 0) return 0.0;
  if (p <= 0.0) return min;
  if (p >= 100.0) return max;
  // Rank of the target observation (1-based, ceil).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * count);
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    cumulative += bucket_counts[i];
    if (cumulative >= rank) {
      const double upper = i < bounds.size() ? bounds[i] : max;
      return std::clamp(upper, min, max);
    }
  }
  return max;
}

}  // namespace obs
}  // namespace fairclean
