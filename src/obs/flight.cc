#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace fairclean {
namespace obs {

namespace internal {
std::atomic<bool> g_flight_enabled{false};
}  // namespace internal

namespace {

constexpr uint32_t kMagic = 0x464C4954;  // "FLIT"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kMaxRings = 1024;
constexpr uint32_t kMaxSites = 512;
constexpr uint32_t kMaxSiteLen = 48;
constexpr size_t kMinRingEvents = 64;
constexpr size_t kMaxRingEvents = 1u << 20;
constexpr size_t kDefaultRingEvents = 4096;

// ---------------------------------------------------------------------------
// Site table: fixed global storage so the crash handler can walk it without
// touching the allocator or any lock. Site 0 is always "?" (overflow).

char g_sites[kMaxSites][kMaxSiteLen];
std::atomic<uint32_t> g_site_count{0};
std::mutex g_site_mutex;

void EnsureSiteZero() {
  std::lock_guard<std::mutex> lock(g_site_mutex);
  if (g_site_count.load(std::memory_order_relaxed) == 0) {
    std::snprintf(g_sites[0], kMaxSiteLen, "?");
    g_site_count.store(1, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Rings. One per recording thread, registered in a fixed global array the
// dumper walks. Rings are recycled through a free list when their thread
// exits, so a server that churns short-lived driver threads does not grow
// memory without bound — a recycled ring keeps its history (the dead
// thread's last events stay in the next dump) and its original tid.

struct Ring {
  uint32_t tid = 0;
  uint32_t capacity = 0;  // power of two
  std::atomic<uint64_t> head{0};
  FlightEntry* entries = nullptr;
};

std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<uint32_t> g_ring_count{0};
std::atomic<uint32_t> g_ring_capacity{kDefaultRingEvents};

std::mutex g_free_mutex;
std::vector<Ring*>& FreeRings() {
  static std::vector<Ring*>* list = new std::vector<Ring*>();
  return *list;
}

// A thread's claim on a ring; the destructor returns the ring for reuse.
struct RingLease {
  Ring* ring = nullptr;
  bool failed = false;
  ~RingLease() {
    if (ring != nullptr) {
      std::lock_guard<std::mutex> lock(g_free_mutex);
      FreeRings().push_back(ring);
      ring = nullptr;
    }
  }
};
thread_local RingLease t_lease;

uint32_t RoundUpPow2(size_t value) {
  uint32_t result = 1;
  while (result < value) result <<= 1;
  return result;
}

Ring* RingForThisThread() {
  if (t_lease.ring != nullptr) return t_lease.ring;
  if (t_lease.failed) return nullptr;
  {
    std::lock_guard<std::mutex> lock(g_free_mutex);
    if (!FreeRings().empty()) {
      t_lease.ring = FreeRings().back();
      FreeRings().pop_back();
      return t_lease.ring;
    }
  }
  const uint32_t slot = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxRings) {
    t_lease.failed = true;
    return nullptr;
  }
  const uint32_t capacity =
      g_ring_capacity.load(std::memory_order_relaxed);
  Ring* ring = new Ring();
  ring->tid = Tracer::CurrentThreadTid();
  ring->capacity = capacity;
  ring->entries = new FlightEntry[capacity]();
  g_rings[slot].store(ring, std::memory_order_release);
  t_lease.ring = ring;
  return ring;
}

// ---------------------------------------------------------------------------
// Dump paths are baked into fixed buffers at Init so the signal handler
// never builds a string.

char g_default_path[512] = "fairclean.flight";
char g_default_tmp[520] = "fairclean.flight.tmp";
std::atomic<bool> g_explicit_toggle{false};  // Enable()/Disable() beat env
std::atomic<bool> g_crash_dumped{false};

bool WriteFull(int fd, const void* data, size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t written = ::write(fd, cursor, size);
    if (written <= 0) {
      if (written < 0 && errno == EINTR) continue;
      return false;
    }
    cursor += written;
    size -= static_cast<size_t>(written);
  }
  return true;
}

// Async-signal-safe dump: open/write/fsync/close/rename only, no locks, no
// allocation. Reading a ring that another thread is appending to can tear
// the slot being written; the decoder validates entries and drops torn
// ones, so a dump is at worst missing the newest event per thread.
bool DumpRaw(const char* tmp_path, const char* final_path,
             uint32_t reason) {
  const int fd = ::open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = true;

  const uint32_t site_count = g_site_count.load(std::memory_order_acquire);
  uint32_t ring_count = g_ring_count.load(std::memory_order_acquire);
  if (ring_count > kMaxRings) ring_count = kMaxRings;
  uint32_t present = 0;
  for (uint32_t i = 0; i < ring_count; ++i) {
    if (g_rings[i].load(std::memory_order_acquire) != nullptr) ++present;
  }

  const uint32_t header[6] = {kMagic, kVersion, reason,
                              site_count, present, 0};
  ok = ok && WriteFull(fd, header, sizeof(header));

  for (uint32_t i = 0; ok && i < site_count; ++i) {
    const uint16_t length =
        static_cast<uint16_t>(std::strlen(g_sites[i]));
    ok = ok && WriteFull(fd, &length, sizeof(length));
    ok = ok && WriteFull(fd, g_sites[i], length);
  }

  for (uint32_t i = 0; ok && i < ring_count; ++i) {
    const Ring* ring = g_rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t recorded = ring->head.load(std::memory_order_acquire);
    const uint32_t stored =
        recorded < ring->capacity ? static_cast<uint32_t>(recorded)
                                  : ring->capacity;
    const uint32_t ring_header[4] = {ring->tid, ring->capacity, stored, 0};
    ok = ok && WriteFull(fd, ring_header, sizeof(ring_header));
    ok = ok && WriteFull(fd, &recorded, sizeof(recorded));
    ok = ok && WriteFull(fd, ring->entries,
                         static_cast<size_t>(stored) * sizeof(FlightEntry));
  }

  if (ok) ::fsync(fd);
  ::close(fd);
  if (!ok) {
    ::unlink(tmp_path);
    return false;
  }
  return ::rename(tmp_path, final_path) == 0;
}

void CrashHandler(int sig) {
  // One dump per process: a cascading fault inside the handler must not
  // recurse. SA_RESETHAND restored the default disposition before entry,
  // so the re-raise below terminates (and cores) as if we were never here.
  if (!g_crash_dumped.exchange(true)) {
    DumpRaw(g_default_tmp, g_default_path, static_cast<uint32_t>(sig));
  }
  ::raise(sig);
}

void BakePaths(const char* path) {
  std::snprintf(g_default_path, sizeof(g_default_path), "%s", path);
  std::snprintf(g_default_tmp, sizeof(g_default_tmp), "%s.tmp",
                g_default_path);
}

void SetEnabled(bool on) {
  internal::g_flight_enabled.store(on, std::memory_order_relaxed);
  internal::SetCaptureBit(internal::kCaptureFlight, on);
}

}  // namespace

void FlightRecorder::Init() {
  static std::once_flag once;
  std::call_once(once, [] {
    EnsureSiteZero();
    // obs sits below src/common in the link order, so env parsing here is
    // std::getenv + lenient hand-parsing rather than common/env.h.
    const char* events = std::getenv("FAIRCLEAN_FLIGHT_EVENTS");
    if (events != nullptr && events[0] != '\0') {
      char* end = nullptr;
      const long parsed = std::strtol(events, &end, 10);
      if (end != events && parsed > 0) {
        size_t clamped = static_cast<size_t>(parsed);
        if (clamped < kMinRingEvents) clamped = kMinRingEvents;
        if (clamped > kMaxRingEvents) clamped = kMaxRingEvents;
        g_ring_capacity.store(RoundUpPow2(clamped),
                              std::memory_order_relaxed);
      }
    }
    const char* path = std::getenv("FAIRCLEAN_FLIGHT");
    bool enable = true;
    if (path != nullptr && path[0] != '\0') {
      if (std::strcmp(path, "off") == 0 || std::strcmp(path, "0") == 0 ||
          std::strcmp(path, "none") == 0) {
        enable = false;
      } else {
        BakePaths(path);
      }
    }
    if (!g_explicit_toggle.load(std::memory_order_relaxed)) {
      SetEnabled(enable);
    }
    // A recorder that only dumps when a server asks for it is half a black
    // box: every binary that records must also dump on a fatal signal, so
    // the handler is installed here rather than per entry point. Disarmed
    // (FAIRCLEAN_FLIGHT=off) processes keep their default dispositions.
    if (enable) InstallCrashHandler();
  });
}

void FlightRecorder::Enable(size_t capacity) {
  EnsureSiteZero();
  g_ring_capacity.store(
      RoundUpPow2(capacity < kMinRingEvents
                      ? kMinRingEvents
                      : (capacity > kMaxRingEvents ? kMaxRingEvents
                                                   : capacity)),
      std::memory_order_relaxed);
  g_explicit_toggle.store(true, std::memory_order_relaxed);
  SetEnabled(true);
}

void FlightRecorder::Disable() {
  g_explicit_toggle.store(true, std::memory_order_relaxed);
  SetEnabled(false);
}

uint16_t FlightRecorder::Site(const std::string& name) {
  uint32_t count = g_site_count.load(std::memory_order_acquire);
  for (uint32_t i = 0; i < count; ++i) {
    if (name == g_sites[i]) return static_cast<uint16_t>(i);
  }
  std::lock_guard<std::mutex> lock(g_site_mutex);
  count = g_site_count.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < count; ++i) {
    if (name == g_sites[i]) return static_cast<uint16_t>(i);
  }
  if (count >= kMaxSites) return 0;
  std::snprintf(g_sites[count], kMaxSiteLen, "%s", name.c_str());
  g_site_count.store(count + 1, std::memory_order_release);
  return static_cast<uint16_t>(count);
}

uint16_t FlightRecorder::SiteForCategory(const char* category) {
  // Span categories are string literals, so a tiny pointer-identity cache
  // turns the common case into a linear scan over a handful of entries
  // with no string comparison at all.
  struct CacheSlot {
    std::atomic<const char*> pointer{nullptr};
    std::atomic<uint16_t> site{0};
  };
  static CacheSlot cache[64];
  static std::atomic<uint32_t> cache_count{0};
  const uint32_t count = cache_count.load(std::memory_order_acquire);
  const uint32_t scan = count < 64 ? count : 64;
  for (uint32_t i = 0; i < scan; ++i) {
    if (cache[i].pointer.load(std::memory_order_acquire) == category) {
      return cache[i].site.load(std::memory_order_relaxed);
    }
  }
  const uint16_t site = Site(std::string(category));
  const uint32_t slot = cache_count.fetch_add(1, std::memory_order_relaxed);
  if (slot < 64) {
    cache[slot].site.store(site, std::memory_order_relaxed);
    cache[slot].pointer.store(category, std::memory_order_release);
  }
  return site;
}

void FlightRecorder::Record(FlightEventType type, uint16_t site,
                            uint32_t arg) {
  if (!FlightEnabled()) return;
  Ring* ring = RingForThisThread();
  if (ring == nullptr) return;
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  FlightEntry& entry = ring->entries[head & (ring->capacity - 1)];
  entry.ts_us = static_cast<uint64_t>(Tracer::Global().NowMicros());
  entry.site = site;
  entry.type = static_cast<uint8_t>(type);
  entry.reserved = 0;
  entry.arg = arg;
  ring->head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::InstallCrashHandler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashHandler;
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  sigemptyset(&action.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &action, nullptr);
  }
}

bool FlightRecorder::Dump(const std::string& path, uint32_t reason,
                          std::string* error) {
  static std::mutex dump_mutex;  // serializes explicit (non-signal) dumps
  std::lock_guard<std::mutex> lock(dump_mutex);
  const std::string tmp = path + ".tmp";
  if (!DumpRaw(tmp.c_str(), path.c_str(), reason)) {
    if (error != nullptr) *error = "cannot write flight dump to " + path;
    return false;
  }
  return true;
}

bool FlightRecorder::DumpDefault(uint32_t reason, std::string* error) {
  return Dump(DefaultPath(), reason, error);
}

std::string FlightRecorder::DefaultPath() {
  return std::string(g_default_path);
}

uint64_t FlightRecorder::EventsRecordedOnThisThread() {
  return t_lease.ring == nullptr
             ? 0
             : t_lease.ring->head.load(std::memory_order_relaxed);
}

const char* FlightEventTypeName(uint8_t type) {
  switch (static_cast<FlightEventType>(type)) {
    case FlightEventType::kSpanBegin:
      return "span_begin";
    case FlightEventType::kSpanEnd:
      return "span_end";
    case FlightEventType::kFault:
      return "fault";
    case FlightEventType::kTxnCommit:
      return "txn_commit";
    case FlightEventType::kTxnRollback:
      return "txn_rollback";
    case FlightEventType::kShed:
      return "shed";
    case FlightEventType::kCheckpoint:
      return "checkpoint";
    case FlightEventType::kDeadline:
      return "deadline";
    case FlightEventType::kMark:
      return "mark";
  }
  return "?";
}

size_t FlightDump::TotalEvents() const {
  size_t total = 0;
  for (const Thread& thread : threads) total += thread.events.size();
  return total;
}

bool DecodeFlightFile(const std::string& path, FlightDump* dump,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  size_t offset = 0;
  const auto read_bytes = [&](void* destination, size_t size) {
    if (offset + size > bytes.size()) return false;
    std::memcpy(destination, bytes.data() + offset, size);
    offset += size;
    return true;
  };

  uint32_t header[6];
  if (!read_bytes(header, sizeof(header)) || header[0] != kMagic) {
    if (error != nullptr) *error = path + " is not a flight dump";
    return false;
  }
  dump->version = header[1];
  dump->reason = header[2];
  const uint32_t site_count = header[3];
  const uint32_t ring_count = header[4];

  dump->sites.clear();
  for (uint32_t i = 0; i < site_count; ++i) {
    uint16_t length = 0;
    if (!read_bytes(&length, sizeof(length)) ||
        offset + length > bytes.size()) {
      if (error != nullptr) *error = path + ": truncated site table";
      return false;
    }
    dump->sites.emplace_back(bytes.data() + offset, length);
    offset += length;
  }

  dump->threads.clear();
  for (uint32_t i = 0; i < ring_count; ++i) {
    uint32_t ring_header[4];
    uint64_t recorded = 0;
    if (!read_bytes(ring_header, sizeof(ring_header)) ||
        !read_bytes(&recorded, sizeof(recorded))) {
      if (error != nullptr) *error = path + ": truncated ring header";
      return false;
    }
    const uint32_t capacity = ring_header[1];
    const uint32_t stored = ring_header[2];
    if (capacity == 0 || stored > capacity ||
        offset + static_cast<size_t>(stored) * sizeof(FlightEntry) >
            bytes.size()) {
      if (error != nullptr) *error = path + ": corrupt ring header";
      return false;
    }
    std::vector<FlightEntry> slots(stored);
    std::memcpy(slots.data(), bytes.data() + offset,
                static_cast<size_t>(stored) * sizeof(FlightEntry));
    offset += static_cast<size_t>(stored) * sizeof(FlightEntry);

    FlightDump::Thread thread;
    thread.tid = ring_header[0];
    thread.recorded = recorded;
    // Unwind ring order into chronological order: when the ring wrapped,
    // the oldest surviving entry sits just past the write cursor.
    const uint32_t start =
        recorded > capacity
            ? static_cast<uint32_t>(recorded & (capacity - 1))
            : 0;
    thread.events.reserve(stored);
    for (uint32_t j = 0; j < stored; ++j) {
      const FlightEntry& entry = slots[(start + j) % stored];
      // A crashing dumper can catch one slot mid-write; drop entries that
      // fail validation instead of surfacing garbage.
      if (entry.type < 1 || entry.type > 9) continue;
      if (entry.site >= site_count) continue;
      thread.events.push_back(entry);
    }
    dump->threads.push_back(std::move(thread));
  }
  return true;
}

}  // namespace obs
}  // namespace fairclean
