#include "obs/trace.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json_lite.h"
#include "obs/log.h"

namespace fairclean {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

struct Event {
  std::string name;
  const char* category;  // always a string literal at call sites
  char phase;            // 'X' complete, 'i' instant
  uint32_t tid;
  int64_t ts_us;
  int64_t dur_us;
};

// One per thread that ever traced. Owned jointly by the thread (via a
// thread_local shared_ptr) and the tracer's registry, so events survive
// thread exit until the next flush.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  uint32_t tid = 0;
  std::string thread_name;
};

// Name a thread asked for before its buffer existed (SetCurrentThreadName
// is callable while tracing is disabled).
thread_local std::string t_pending_thread_name;
thread_local std::shared_ptr<ThreadBuffer> t_buffer;

// Immutable trace epoch, fixed the first time anyone asks (the singleton's
// construction). A function-local static keeps it data-race free without
// locking on the NowMicros hot path.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

struct Tracer::Impl {
  std::mutex mutex;  // guards path, buffers registry, drained events
  std::string path;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<Event> drained;
  std::atomic<uint32_t> next_tid{1};
  bool atexit_registered = false;

  ThreadBuffer* BufferForThisThread() {
    if (t_buffer == nullptr) {
      auto buffer = std::make_shared<ThreadBuffer>();
      buffer->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      buffer->thread_name = t_pending_thread_name;
      {
        std::lock_guard<std::mutex> lock(mutex);
        buffers.push_back(buffer);
      }
      t_buffer = std::move(buffer);
    }
    return t_buffer.get();
  }
};

Tracer::Tracer() : impl_(new Impl) { TraceEpoch(); }

Tracer& Tracer::Global() {
  // Leaked singleton: worker threads may still trace during late shutdown,
  // after static destructors would have run.
  static Tracer* tracer = [] {
    Tracer* instance = new Tracer();
    const char* path = std::getenv("FAIRCLEAN_TRACE");
    if (path != nullptr && path[0] != '\0') instance->Enable(path);
    return instance;
  }();
  return *tracer;
}

void Tracer::Enable(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->path = path;
  if (!impl_->atexit_registered) {
    impl_->atexit_registered = true;
    std::atexit([] { Tracer::Global().Flush(); });
  }
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  Flush();
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->drained.clear();
  impl_->path.clear();
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void Tracer::RecordComplete(const char* category, std::string name,
                            int64_t ts_us, int64_t dur_us) {
  ThreadBuffer* buffer = impl_->BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(Event{std::move(name), category, 'X', buffer->tid,
                                 ts_us, dur_us});
}

void Tracer::RecordInstant(const char* category, std::string name) {
  ThreadBuffer* buffer = impl_->BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(
      Event{std::move(name), category, 'i', buffer->tid, NowMicros(), 0});
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  t_pending_thread_name = name;
  if (t_buffer != nullptr) {
    std::lock_guard<std::mutex> lock(t_buffer->mutex);
    t_buffer->thread_name = name;
  }
}

uint32_t Tracer::CurrentThreadTid() {
  return Global().impl_->BufferForThisThread()->tid;
}

std::string Tracer::path() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->path;
}

void Tracer::Flush() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->path.empty()) return;

  // Drain every thread's buffer into the accumulated list; thread names go
  // into metadata events keyed by tid.
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  for (const std::shared_ptr<ThreadBuffer>& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    impl_->drained.insert(impl_->drained.end(),
                          std::make_move_iterator(buffer->events.begin()),
                          std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
    if (!buffer->thread_name.empty()) {
      thread_names.emplace_back(buffer->tid, buffer->thread_name);
    }
  }

  std::ofstream out(impl_->path, std::ios::binary | std::ios::trunc);
  if (!out) {
    FC_LOG_ERROR("trace", "cannot write trace file %s",
                 impl_->path.c_str());
    return;
  }
  const long long pid = static_cast<long long>(::getpid());
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    out << (first ? "" : ",") << "\n{\"name\":\"thread_name\",\"ph\":\"M\","
        << "\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    first = false;
  }
  for (const Event& event : impl_->drained) {
    out << (first ? "" : ",") << "\n{\"name\":\"" << JsonEscape(event.name)
        << "\",\"cat\":\"" << JsonEscape(event.category)
        << "\",\"ph\":\"" << event.phase << "\",\"pid\":" << pid
        << ",\"tid\":" << event.tid << ",\"ts\":" << event.ts_us;
    if (event.phase == 'X') {
      out << ",\"dur\":" << event.dur_us;
    } else if (event.phase == 'i') {
      out << ",\"s\":\"t\"";
    }
    out << "}";
    first = false;
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceSpan::Begin(const char* category, std::string name) {
  active_ = true;
  category_ = category;
  name_ = std::move(name);
  start_us_ = Tracer::Global().NowMicros();
}

void TraceSpan::End() {
  // Tracing may have been disabled mid-span (tests); Record on a disabled
  // tracer is harmless — the buffer is simply never flushed to a file.
  Tracer& tracer = Tracer::Global();
  int64_t end_us = tracer.NowMicros();
  tracer.RecordComplete(category_, std::move(name_), start_us_,
                        end_us - start_us_);
}

}  // namespace obs
}  // namespace fairclean
