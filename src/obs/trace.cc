#include "obs/trace.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/flight.h"
#include "obs/json_lite.h"
#include "obs/log.h"
#include "obs/trace_context.h"

namespace fairclean {
namespace obs {

namespace internal {

std::atomic<uint32_t> g_capture_mask{0};

void SetCaptureBit(uint32_t bit, bool on) {
  if (on) {
    g_capture_mask.fetch_or(bit, std::memory_order_relaxed);
  } else {
    g_capture_mask.fetch_and(~bit, std::memory_order_relaxed);
  }
}

}  // namespace internal

namespace {

struct Event {
  std::string name;
  const char* category;  // always a string literal at call sites
  char phase;            // 'X' complete, 'i' instant
  uint32_t tid;
  int64_t ts_us;
  int64_t dur_us;
  uint64_t trace_id;  // 0 = no request context
};

// One per thread that ever traced. Owned jointly by the thread (via a
// thread_local shared_ptr) and the tracer's registry, so events survive
// thread exit until the next flush.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  uint32_t tid = 0;
  std::string thread_name;
};

// Name a thread asked for before its buffer existed (SetCurrentThreadName
// is callable while tracing is disabled).
thread_local std::string t_pending_thread_name;
thread_local std::shared_ptr<ThreadBuffer> t_buffer;

// Span-nesting depth on this thread, maintained by TraceSpan Begin/End so
// the trace store can render span trees without timestamp heuristics.
thread_local uint32_t t_span_depth = 0;

// Immutable trace epoch, fixed the first time anyone asks (the singleton's
// construction). A function-local static keeps it data-race free without
// locking on the NowMicros hot path.
std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

struct Tracer::Impl {
  std::mutex mutex;  // guards path, buffers registry, drained events
  std::string path;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::vector<Event> drained;
  std::atomic<uint32_t> next_tid{1};
  bool atexit_registered = false;
  std::string process_label;

  ThreadBuffer* BufferForThisThread() {
    if (t_buffer == nullptr) {
      auto buffer = std::make_shared<ThreadBuffer>();
      buffer->tid = next_tid.fetch_add(1, std::memory_order_relaxed);
      buffer->thread_name = t_pending_thread_name;
      {
        std::lock_guard<std::mutex> lock(mutex);
        buffers.push_back(buffer);
      }
      t_buffer = std::move(buffer);
    }
    return t_buffer.get();
  }
};

Tracer::Tracer() : impl_(new Impl) { TraceEpoch(); }

Tracer& Tracer::Global() {
  // Leaked singleton: worker threads may still trace during late shutdown,
  // after static destructors would have run.
  static Tracer* tracer = [] {
    Tracer* instance = new Tracer();
    const char* path = std::getenv("FAIRCLEAN_TRACE");
    if (path != nullptr && path[0] != '\0') instance->Enable(path);
    // The flight recorder is armed from the same entry points that arm
    // tracing, so every instrumented binary records by default.
    FlightRecorder::Init();
    return instance;
  }();
  return *tracer;
}

void Tracer::Enable(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->path = path;
  if (!impl_->atexit_registered) {
    impl_->atexit_registered = true;
    std::atexit([] { Tracer::Global().Flush(); });
  }
  internal::SetCaptureBit(internal::kCaptureFile, true);
}

void Tracer::Disable() {
  Flush();
  internal::SetCaptureBit(internal::kCaptureFile, false);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->drained.clear();
  impl_->path.clear();
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

void Tracer::RecordComplete(const char* category, std::string name,
                            int64_t ts_us, int64_t dur_us, uint32_t depth) {
  const uint32_t mask = CaptureMask();
  const uint64_t trace_id = CurrentTraceId();
  ThreadBuffer* buffer = impl_->BufferForThisThread();
  if ((mask & internal::kCaptureStore) != 0 && trace_id != 0) {
    StoredSpan span;
    span.name = name;
    span.category = category;
    span.phase = 'X';
    span.tid = buffer->tid;
    span.depth = depth;
    span.ts_us = ts_us;
    span.dur_us = dur_us;
    internal::TraceStoreRecord(trace_id, std::move(span));
  }
  if ((mask & internal::kCaptureFile) != 0) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.push_back(Event{std::move(name), category, 'X',
                                   buffer->tid, ts_us, dur_us, trace_id});
  }
}

void Tracer::RecordInstant(const char* category, std::string name) {
  const uint32_t mask = CaptureMask();
  const uint64_t trace_id = CurrentTraceId();
  const int64_t ts_us = NowMicros();
  ThreadBuffer* buffer = impl_->BufferForThisThread();
  if ((mask & internal::kCaptureStore) != 0 && trace_id != 0) {
    StoredSpan span;
    span.name = name;
    span.category = category;
    span.phase = 'i';
    span.tid = buffer->tid;
    span.depth = t_span_depth;
    span.ts_us = ts_us;
    span.dur_us = 0;
    internal::TraceStoreRecord(trace_id, std::move(span));
  }
  if ((mask & internal::kCaptureFile) != 0) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.push_back(
        Event{std::move(name), category, 'i', buffer->tid, ts_us, 0,
              trace_id});
  }
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  t_pending_thread_name = name;
  if (t_buffer != nullptr) {
    std::lock_guard<std::mutex> lock(t_buffer->mutex);
    t_buffer->thread_name = name;
  }
}

uint32_t Tracer::CurrentThreadTid() {
  return Global().impl_->BufferForThisThread()->tid;
}

void Tracer::SetProcessLabel(const std::string& label) {
  Impl* impl = Global().impl_;
  std::lock_guard<std::mutex> lock(impl->mutex);
  impl->process_label = label;
}

std::string Tracer::path() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->path;
}

void Tracer::Flush() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->path.empty()) return;

  // Drain every thread's buffer into the accumulated list; thread names go
  // into metadata events keyed by tid.
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  for (const std::shared_ptr<ThreadBuffer>& buffer : impl_->buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    impl_->drained.insert(impl_->drained.end(),
                          std::make_move_iterator(buffer->events.begin()),
                          std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
    if (!buffer->thread_name.empty()) {
      thread_names.emplace_back(buffer->tid, buffer->thread_name);
    }
  }

  std::ofstream out(impl_->path, std::ios::binary | std::ios::trunc);
  if (!out) {
    FC_LOG_ERROR("trace", "cannot write trace file %s",
                 impl_->path.c_str());
    return;
  }
  const long long pid = static_cast<long long>(::getpid());
  out << "{\"traceEvents\":[";
  bool first = true;
  if (!impl_->process_label.empty()) {
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\""
        << JsonEscape(impl_->process_label) << "\"}}";
    first = false;
  }
  for (const auto& [tid, name] : thread_names) {
    out << (first ? "" : ",") << "\n{\"name\":\"thread_name\",\"ph\":\"M\","
        << "\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
    first = false;
  }
  for (const Event& event : impl_->drained) {
    out << (first ? "" : ",") << "\n{\"name\":\"" << JsonEscape(event.name)
        << "\",\"cat\":\"" << JsonEscape(event.category)
        << "\",\"ph\":\"" << event.phase << "\",\"pid\":" << pid
        << ",\"tid\":" << event.tid << ",\"ts\":" << event.ts_us;
    if (event.phase == 'X') {
      out << ",\"dur\":" << event.dur_us;
    } else if (event.phase == 'i') {
      out << ",\"s\":\"t\"";
    }
    if (event.trace_id != 0) {
      out << ",\"args\":{\"trace\":\"" << TraceIdHex(event.trace_id)
          << "\"}";
    }
    out << "}";
    first = false;
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void TraceSpan::Begin(uint32_t mask, const char* category,
                      std::string name) {
  active_ = true;
  mask_ = mask;
  category_ = category;
  name_ = std::move(name);
  depth_ = t_span_depth++;
  if ((mask & internal::kCaptureFlight) != 0) {
    flight_site_ = FlightRecorder::SiteForCategory(category);
    FlightRecorder::Record(FlightEventType::kSpanBegin, flight_site_,
                           depth_);
  }
  start_us_ = Tracer::Global().NowMicros();
}

void TraceSpan::End() {
  // Sinks may have toggled mid-span (tests); RecordComplete re-checks the
  // live mask, so a span that began under one mask records only into the
  // sinks still active at scope exit.
  Tracer& tracer = Tracer::Global();
  const int64_t end_us = tracer.NowMicros();
  const int64_t dur_us = end_us - start_us_;
  t_span_depth = depth_;
  if ((mask_ & internal::kCaptureFlight) != 0) {
    const uint64_t clamped =
        dur_us < 0 ? 0u : static_cast<uint64_t>(dur_us);
    FlightRecorder::Record(
        FlightEventType::kSpanEnd, flight_site_,
        clamped > 0xffffffffULL ? 0xffffffffu
                                : static_cast<uint32_t>(clamped));
  }
  if ((CaptureMask() &
       (internal::kCaptureFile | internal::kCaptureStore)) != 0) {
    tracer.RecordComplete(category_, std::move(name_), start_us_, dur_us,
                          depth_);
  }
}

}  // namespace obs
}  // namespace fairclean
