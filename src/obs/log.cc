#include "obs/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <chrono>

namespace fairclean {
namespace obs {

namespace internal {
std::atomic<int> g_min_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace internal

namespace {

// Elapsed-seconds origin shared by every log line of the process.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Reads FAIRCLEAN_LOG once at start-up so the level is active before any
// subsystem logs. ProcessEpoch is touched here too so "+0.000s" means
// roughly process start, not first log call.
const bool g_env_initialized = [] {
  ProcessEpoch();
  InitLogLevelFromEnv(LogLevel::kWarn);
  return true;
}();

}  // namespace

LogLevel LogLevelFromString(const std::string& name, LogLevel fallback) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return fallback;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off  ";
  }
  return "?    ";
}

LogLevel CurrentLogLevel() {
  return static_cast<LogLevel>(
      internal::g_min_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  internal::g_min_log_level.store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

void InitLogLevelFromEnv(LogLevel default_level) {
  const char* raw = std::getenv("FAIRCLEAN_LOG");
  LogLevel level = default_level;
  if (raw != nullptr && raw[0] != '\0') {
    level = LogLevelFromString(raw, default_level);
  }
  SetLogLevel(level);
}

void LogWrite(LogLevel level, const char* site, const char* format, ...) {
  (void)g_env_initialized;
  char message[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - ProcessEpoch())
                       .count();
  // One fprintf call per line keeps concurrent writers from interleaving
  // within a line.
  std::fprintf(stderr, "[fairclean][%s][+%.3fs] %s: %s\n",
               LogLevelName(level), elapsed, site, message);
}

}  // namespace obs
}  // namespace fairclean
