#include "obs/trace_context.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

#include "obs/trace.h"

namespace fairclean {
namespace obs {

namespace {

thread_local uint64_t t_trace_id = 0;

/// Bounded most-recent-traces store. A single mutex is fine here: the
/// store only receives spans while a request context is active, and a
/// request produces tens of spans, not millions.
struct TraceStore {
  std::mutex mutex;
  size_t max_traces = 256;
  size_t max_spans = 512;
  std::map<uint64_t, std::vector<StoredSpan>> traces;
  std::deque<uint64_t> order;  ///< insertion order for eviction
};

TraceStore& Store() {
  static TraceStore* store = new TraceStore();  // leaked like the tracer
  return *store;
}

}  // namespace

uint64_t CurrentTraceId() { return t_trace_id; }

uint64_t SwapCurrentTraceId(uint64_t trace_id) {
  uint64_t previous = t_trace_id;
  t_trace_id = trace_id;
  return previous;
}

uint64_t MintTraceId() {
  // Salt the counter with startup time and pid so two server incarnations
  // never mint the same sequence; the low bits stay monotonic for easy
  // "newest request" reading in dumps.
  static const uint64_t salt = [] {
    uint64_t now = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return ((now ^ (static_cast<uint64_t>(::getpid()) << 40)) &
            0xffffffffff000000ULL);
  }();
  static std::atomic<uint64_t> next{1};
  uint64_t id = salt | (next.fetch_add(1, std::memory_order_relaxed) &
                        0x0000000000ffffffULL);
  return id == 0 ? 1 : id;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buffer;
}

uint64_t ParseTraceIdHex(const std::string& text) {
  if (text.empty() || text.size() > 16) return 0;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

void EnableTraceStore(size_t max_traces, size_t max_spans) {
  TraceStore& store = Store();
  {
    std::lock_guard<std::mutex> lock(store.mutex);
    store.max_traces = max_traces == 0 ? 1 : max_traces;
    store.max_spans = max_spans == 0 ? 1 : max_spans;
  }
  internal::SetCaptureBit(internal::kCaptureStore, true);
}

void DisableTraceStore() {
  internal::SetCaptureBit(internal::kCaptureStore, false);
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mutex);
  store.traces.clear();
  store.order.clear();
}

bool TraceStoreEnabled() {
  return (internal::g_capture_mask.load(std::memory_order_relaxed) &
          internal::kCaptureStore) != 0;
}

std::optional<std::vector<StoredSpan>> TraceStoreGet(uint64_t trace_id) {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mutex);
  auto it = store.traces.find(trace_id);
  if (it == store.traces.end()) return std::nullopt;
  std::vector<StoredSpan> spans = it->second;
  std::stable_sort(spans.begin(), spans.end(),
                   [](const StoredSpan& a, const StoredSpan& b) {
                     return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                               : a.depth < b.depth;
                   });
  return spans;
}

std::vector<uint64_t> TraceStoreIds() {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mutex);
  return std::vector<uint64_t>(store.order.begin(), store.order.end());
}

namespace internal {

void TraceStoreRecord(uint64_t trace_id, StoredSpan span) {
  TraceStore& store = Store();
  std::lock_guard<std::mutex> lock(store.mutex);
  auto it = store.traces.find(trace_id);
  if (it == store.traces.end()) {
    while (store.order.size() >= store.max_traces) {
      store.traces.erase(store.order.front());
      store.order.pop_front();
    }
    store.order.push_back(trace_id);
    it = store.traces.emplace(trace_id, std::vector<StoredSpan>()).first;
  }
  if (it->second.size() >= store.max_spans) return;  // cap, keep counting
  it->second.push_back(std::move(span));
}

}  // namespace internal

}  // namespace obs
}  // namespace fairclean
