#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json_lite.h"
#include "obs/log.h"

namespace fairclean {
namespace obs {

namespace internal {
std::atomic<bool> g_metrics_export_enabled{false};
}  // namespace internal

namespace {

// CAS loops instead of C++20 atomic<double>::fetch_add / fetch_min so the
// code compiles on any conforming toolchain.
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// Identifies the global registry without re-entering Global() (whose magic
// static would deadlock if EnableExport runs during its own initializer).
MetricsRegistry* g_global_instance = nullptr;

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMinDouble(&min_, value);
  AtomicMaxDouble(&max_, value);
  if (parent_ != nullptr) parent_->Observe(value);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Percentile(double p) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  // Rank of the target observation (1-based, ceil).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * total);
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  std::vector<uint64_t> counts = bucket_counts();
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      double upper = i < bounds_.size() ? bounds_[i] : max();
      return std::clamp(upper, min(), max());
    }
  }
  return max();
}

MetricsRegistry::MetricsRegistry(MetricsRegistry* parent) : parent_(parent) {}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as Tracer: instruments must outlive any
  // late-exiting thread.
  static MetricsRegistry* registry = [] {
    auto* instance = new MetricsRegistry();
    g_global_instance = instance;
    const char* path = std::getenv("FAIRCLEAN_METRICS");
    if (path != nullptr && path[0] != '\0') instance->EnableExport(path);
    return instance;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
    if (parent_ != nullptr) slot->parent_ = parent_->GetCounter(name);
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
    if (parent_ != nullptr) slot->parent_ = parent_->GetGauge(name);
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(bounds));
    if (parent_ != nullptr) {
      slot->parent_ = parent_->GetHistogram(name, bounds);
    }
  }
  return slot.get();
}

void MetricsRegistry::EnableExport(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_ = path;
  if (this == g_global_instance) {
    internal::g_metrics_export_enabled.store(true, std::memory_order_relaxed);
  }
  if (!atexit_registered_) {
    atexit_registered_ = true;
    std::atexit([] {
      MetricsRegistry& global = MetricsRegistry::Global();
      std::string path = global.export_path();
      if (!path.empty()) global.WriteJsonlFile(path);
    });
  }
}

void MetricsRegistry::DisableExport() {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_.clear();
  if (this == g_global_instance) {
    internal::g_metrics_export_enabled.store(false, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  // std::map iteration gives the sorted-by-name order; merge the three
  // kinds into one sorted list.
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kCounter;
    snapshot.name = name;
    snapshot.value = static_cast<double>(counter->value());
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kGauge;
    snapshot.name = name;
    snapshot.value = gauge->value();
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kHistogram;
    snapshot.name = name;
    snapshot.count = histogram->count();
    snapshot.sum = histogram->sum();
    snapshot.min = histogram->min();
    snapshot.max = histogram->max();
    snapshot.p50 = histogram->Percentile(50.0);
    snapshot.p95 = histogram->Percentile(95.0);
    snapshot.bounds = histogram->bounds();
    snapshot.bucket_counts = histogram->bucket_counts();
    out.push_back(std::move(snapshot));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::ToJsonl() const {
  std::ostringstream out;
  for (const MetricSnapshot& snapshot : Snapshot()) {
    out << "{\"metric\":\"" << JsonEscape(snapshot.name) << "\"";
    switch (snapshot.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << ",\"type\":\"counter\",\"value\":"
            << static_cast<uint64_t>(snapshot.value);
        break;
      case MetricSnapshot::Kind::kGauge:
        out << ",\"type\":\"gauge\",\"value\":"
            << FormatDouble(snapshot.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out << ",\"type\":\"histogram\",\"count\":" << snapshot.count
            << ",\"sum\":" << FormatDouble(snapshot.sum)
            << ",\"min\":" << FormatDouble(snapshot.min)
            << ",\"max\":" << FormatDouble(snapshot.max)
            << ",\"p50\":" << FormatDouble(snapshot.p50)
            << ",\"p95\":" << FormatDouble(snapshot.p95) << ",\"bounds\":[";
        for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
          out << (i == 0 ? "" : ",") << FormatDouble(snapshot.bounds[i]);
        }
        out << "],\"buckets\":[";
        for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
          out << (i == 0 ? "" : ",") << snapshot.bucket_counts[i];
        }
        out << "]";
        break;
      }
    }
    out << "}\n";
  }
  return out.str();
}

bool MetricsRegistry::WriteJsonlFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    FC_LOG_ERROR("metrics", "cannot write metrics file %s", path.c_str());
    return false;
  }
  out << ToJsonl();
  out.flush();
  return static_cast<bool>(out);
}

std::string MetricsRegistry::FormatSummary() const {
  std::ostringstream out;
  for (const MetricSnapshot& snapshot : Snapshot()) {
    switch (snapshot.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << "  " << snapshot.name << " = "
            << static_cast<uint64_t>(snapshot.value) << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out << "  " << snapshot.name << " = " << FormatDouble(snapshot.value)
            << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %s: n=%llu sum=%.6g p50=%.6g p95=%.6g max=%.6g\n",
                      snapshot.name.c_str(),
                      static_cast<unsigned long long>(snapshot.count),
                      snapshot.sum, snapshot.p50, snapshot.p95, snapshot.max);
        out << line;
        break;
      }
    }
  }
  return out.str();
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,  1.0,    2.5,   5.0,  10.0,
      25.0,   50.0,    100.0};
  return bounds;
}

}  // namespace obs
}  // namespace fairclean
