#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "obs/json_lite.h"
#include "obs/log.h"

namespace fairclean {
namespace obs {

namespace internal {

std::atomic<bool> g_metrics_export_enabled{false};

Counter* DroppedSamplesCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("obs.dropped_samples");
  return counter;
}

/// Background thread rewriting the export file every interval. Start/Stop
/// are called from the owning thread (process entry points), never
/// concurrently, so the struct needs no lock beyond the stop handshake.
struct PeriodicExporter {
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  double interval_s = 1.0;
};

}  // namespace internal

namespace {

// CAS loops instead of C++20 atomic<double>::fetch_add / fetch_min so the
// code compiles on any conforming toolchain.
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// Identifies the global registry without re-entering Global() (whose magic
// static would deadlock if EnableExport runs during its own initializer).
MetricsRegistry* g_global_instance = nullptr;

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) {
    // A NaN would poison min/max/sum (and land lower_bound in an arbitrary
    // bucket); account for it instead of recording it. The drop counts
    // once — the scoped histogram returns before forwarding to its parent.
    internal::DroppedSamplesCounter()->Increment();
    return;
  }
  size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMinDouble(&min_, value);
  AtomicMaxDouble(&max_, value);
  if (parent_ != nullptr) parent_->Observe(value);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Percentile(double p) const {
  return PercentileFromBuckets(bounds_, bucket_counts(), count(), min(),
                               max(), p);
}

MetricsRegistry::MetricsRegistry(MetricsRegistry* parent) : parent_(parent) {}

MetricsRegistry::~MetricsRegistry() { StopPeriodicExport(); }

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as Tracer: instruments must outlive any
  // late-exiting thread.
  static MetricsRegistry* registry = [] {
    auto* instance = new MetricsRegistry();
    g_global_instance = instance;
    const char* path = std::getenv("FAIRCLEAN_METRICS");
    if (path != nullptr && path[0] != '\0') {
      instance->EnableExport(path);
      const char* interval = std::getenv("FAIRCLEAN_METRICS_INTERVAL_S");
      if (interval != nullptr && interval[0] != '\0') {
        char* end = nullptr;
        const double parsed = std::strtod(interval, &end);
        if (end != interval && std::isfinite(parsed) && parsed > 0.0) {
          instance->StartPeriodicExport(parsed);
        }
      }
    }
    return instance;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
    if (parent_ != nullptr) slot->parent_ = parent_->GetCounter(name);
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
    if (parent_ != nullptr) slot->parent_ = parent_->GetGauge(name);
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(bounds));
    if (parent_ != nullptr) {
      slot->parent_ = parent_->GetHistogram(name, bounds);
    }
  }
  return slot.get();
}

SlidingWindowHistogram* MetricsRegistry::GetWindowHistogram(
    const std::string& name, const std::vector<double>& bounds,
    double window_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<SlidingWindowHistogram>& slot = windows_[name];
  if (slot == nullptr) {
    slot.reset(new SlidingWindowHistogram(
        bounds,
        window_s > 0.0 ? window_s : DefaultMetricsWindowSeconds()));
  }
  return slot.get();
}

void MetricsRegistry::StartPeriodicExport(double interval_s) {
  StopPeriodicExport();
  if (!(interval_s > 0.0)) return;
  auto exporter = std::make_unique<internal::PeriodicExporter>();
  exporter->interval_s = interval_s;
  internal::PeriodicExporter* raw = exporter.get();
  exporter_ = std::move(exporter);
  exporter_->thread = std::thread([this, raw] {
    std::unique_lock<std::mutex> lock(raw->mutex);
    while (!raw->stop) {
      raw->cv.wait_for(lock, std::chrono::duration<double>(raw->interval_s),
                       [raw] { return raw->stop; });
      if (raw->stop) break;
      lock.unlock();
      FlushExport();
      lock.lock();
    }
  });
}

void MetricsRegistry::StopPeriodicExport() {
  if (exporter_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(exporter_->mutex);
    exporter_->stop = true;
  }
  exporter_->cv.notify_all();
  if (exporter_->thread.joinable()) exporter_->thread.join();
  exporter_.reset();
}

bool MetricsRegistry::FlushExport() {
  const std::string path = export_path();
  if (path.empty()) return false;
  // Temp file + rename so a scraper (or a kill mid-write) never reads a
  // half-written snapshot.
  const std::string tmp = path + ".tmp";
  if (!WriteJsonlFile(tmp)) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void MetricsRegistry::EnableExport(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_ = path;
  if (this == g_global_instance) {
    internal::g_metrics_export_enabled.store(true, std::memory_order_relaxed);
  }
  if (!atexit_registered_) {
    atexit_registered_ = true;
    std::atexit([] { MetricsRegistry::Global().FlushExport(); });
  }
}

void MetricsRegistry::DisableExport() {
  std::lock_guard<std::mutex> lock(mutex_);
  export_path_.clear();
  if (this == g_global_instance) {
    internal::g_metrics_export_enabled.store(false, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::export_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return export_path_;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  // std::map iteration gives the sorted-by-name order; merge the three
  // kinds into one sorted list.
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kCounter;
    snapshot.name = name;
    snapshot.value = static_cast<double>(counter->value());
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kGauge;
    snapshot.name = name;
    snapshot.value = gauge->value();
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kHistogram;
    snapshot.name = name;
    snapshot.count = histogram->count();
    snapshot.sum = histogram->sum();
    snapshot.min = histogram->min();
    snapshot.max = histogram->max();
    snapshot.p50 = histogram->Percentile(50.0);
    snapshot.p95 = histogram->Percentile(95.0);
    snapshot.p99 = histogram->Percentile(99.0);
    snapshot.bounds = histogram->bounds();
    snapshot.bucket_counts = histogram->bucket_counts();
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, window] : windows_) {
    SlidingWindowHistogram::WindowSnapshot view = window->Snapshot();
    MetricSnapshot snapshot;
    snapshot.kind = MetricSnapshot::Kind::kHistogram;
    snapshot.name = name;
    snapshot.windowed = true;
    snapshot.window_s = view.window_s;
    snapshot.count = view.count;
    snapshot.sum = view.sum;
    snapshot.min = view.min;
    snapshot.max = view.max;
    snapshot.p50 = view.p50;
    snapshot.p95 = view.p95;
    snapshot.p99 = view.p99;
    snapshot.bounds = window->bounds();
    snapshot.bucket_counts = std::move(view.bucket_counts);
    out.push_back(std::move(snapshot));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

// One JSON object, shared by the JSONL export and the `metrics` op array.
void AppendMetricJson(std::ostringstream& out,
                      const MetricSnapshot& snapshot) {
  out << "{\"metric\":\"" << JsonEscape(snapshot.name) << "\"";
  switch (snapshot.kind) {
    case MetricSnapshot::Kind::kCounter:
      out << ",\"type\":\"counter\",\"value\":"
          << static_cast<uint64_t>(snapshot.value);
      break;
    case MetricSnapshot::Kind::kGauge:
      out << ",\"type\":\"gauge\",\"value\":"
          << FormatDouble(snapshot.value);
      break;
    case MetricSnapshot::Kind::kHistogram: {
      out << ",\"type\":\"histogram\",\"count\":" << snapshot.count
          << ",\"sum\":" << FormatDouble(snapshot.sum)
          << ",\"min\":" << FormatDouble(snapshot.min)
          << ",\"max\":" << FormatDouble(snapshot.max)
          << ",\"p50\":" << FormatDouble(snapshot.p50)
          << ",\"p95\":" << FormatDouble(snapshot.p95)
          << ",\"p99\":" << FormatDouble(snapshot.p99);
      if (snapshot.windowed) {
        out << ",\"window_s\":" << FormatDouble(snapshot.window_s);
      }
      out << ",\"bounds\":[";
      for (size_t i = 0; i < snapshot.bounds.size(); ++i) {
        out << (i == 0 ? "" : ",") << FormatDouble(snapshot.bounds[i]);
      }
      out << "],\"buckets\":[";
      for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
        out << (i == 0 ? "" : ",") << snapshot.bucket_counts[i];
      }
      out << "]";
      break;
    }
  }
  out << "}";
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

}  // namespace

std::string MetricsRegistry::ToJsonl() const {
  std::ostringstream out;
  for (const MetricSnapshot& snapshot : Snapshot()) {
    AppendMetricJson(out, snapshot);
    out << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToJsonArray() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const MetricSnapshot& snapshot : Snapshot()) {
    if (!first) out << ",";
    AppendMetricJson(out, snapshot);
    first = false;
  }
  out << "]";
  return out.str();
}

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream out;
  for (const MetricSnapshot& snapshot : Snapshot()) {
    const std::string name = PrometheusName(snapshot.name);
    switch (snapshot.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << static_cast<uint64_t>(snapshot.value) << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << FormatDouble(snapshot.value) << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        if (snapshot.windowed) {
          // Windowed histograms scrape as summaries: the quantiles are the
          // point of a window, and cumulative buckets over a sliding span
          // would be misleading.
          out << "# TYPE " << name << " summary\n"
              << name << "{quantile=\"0.5\"} " << FormatDouble(snapshot.p50)
              << "\n"
              << name << "{quantile=\"0.95\"} "
              << FormatDouble(snapshot.p95) << "\n"
              << name << "{quantile=\"0.99\"} "
              << FormatDouble(snapshot.p99) << "\n"
              << name << "_sum " << FormatDouble(snapshot.sum) << "\n"
              << name << "_count " << snapshot.count << "\n";
          break;
        }
        out << "# TYPE " << name << " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
          cumulative += snapshot.bucket_counts[i];
          if (i < snapshot.bounds.size()) {
            out << name << "_bucket{le=\""
                << FormatDouble(snapshot.bounds[i]) << "\"} " << cumulative
                << "\n";
          } else {
            out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
          }
        }
        out << name << "_sum " << FormatDouble(snapshot.sum) << "\n"
            << name << "_count " << snapshot.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

bool MetricsRegistry::WriteJsonlFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    FC_LOG_ERROR("metrics", "cannot write metrics file %s", path.c_str());
    return false;
  }
  out << ToJsonl();
  out.flush();
  return static_cast<bool>(out);
}

std::string MetricsRegistry::FormatSummary() const {
  std::ostringstream out;
  for (const MetricSnapshot& snapshot : Snapshot()) {
    switch (snapshot.kind) {
      case MetricSnapshot::Kind::kCounter:
        out << "  " << snapshot.name << " = "
            << static_cast<uint64_t>(snapshot.value) << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out << "  " << snapshot.name << " = " << FormatDouble(snapshot.value)
            << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %s: n=%llu sum=%.6g p50=%.6g p95=%.6g max=%.6g\n",
                      snapshot.name.c_str(),
                      static_cast<unsigned long long>(snapshot.count),
                      snapshot.sum, snapshot.p50, snapshot.p95, snapshot.max);
        out << line;
        break;
      }
    }
  }
  return out.str();
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,  1.0,    2.5,   5.0,  10.0,
      25.0,   50.0,    100.0};
  return bounds;
}

}  // namespace obs
}  // namespace fairclean
