#ifndef FAIRCLEAN_OBS_WINDOW_H_
#define FAIRCLEAN_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace fairclean {
namespace obs {

/// Sliding-window histogram (DESIGN.md §14): a rotating ring of
/// fixed-bound histogram slices, each covering window_s / slices seconds.
/// An observation lands in the slice its timestamp maps to; a scrape
/// merges the slices still inside the window, so p50/p95/p99, rates and
/// min/max reflect the last window_s seconds instead of the whole process
/// lifetime. Rotation is driven by observation/scrape timestamps — there
/// is no background thread — and reuses a slice in place: the first
/// writer to reach a new time slot resets the slice (mutex + epoch
/// compare, so exactly one reset per slot) before observations land.
///
/// Timestamps are seconds on the caller's clock; the convenience Observe()
/// uses a process-steady clock. The explicit-timestamp ObserveAt /
/// SnapshotAt pair exists so rotation is testable deterministically.
class SlidingWindowHistogram {
 public:
  /// `bounds` are ascending bucket upper bounds (values above the last
  /// bound land in an implicit overflow bucket). `window_s` is the span a
  /// scrape covers; `slices` trades rotation granularity for memory.
  SlidingWindowHistogram(std::vector<double> bounds, double window_s,
                         int slices = 6);
  ~SlidingWindowHistogram();  // out-of-line: Slice is private to the .cc

  /// Records `value` now. Non-finite values are dropped into the global
  /// obs.dropped_samples counter, like Histogram::Observe.
  void Observe(double value);

  /// Records `value` as of `t_s` (seconds). Observations older than the
  /// slice ring (more than window_s behind the newest slot ever observed)
  /// are dropped — the window they belonged to has already rotated away.
  void ObserveAt(double value, double t_s);

  /// Merged view of the slices within the window ending at the newest
  /// rotated slot.
  struct WindowSnapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;  ///< 0 when count == 0
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double window_s = 0.0;
    std::vector<uint64_t> bucket_counts;  ///< bounds.size() + 1
  };

  /// Snapshot of the window ending now.
  WindowSnapshot Snapshot() const;

  /// Snapshot of the window ending at `t_s` (deterministic for tests).
  WindowSnapshot SnapshotAt(double t_s) const;

  const std::vector<double>& bounds() const { return bounds_; }
  double window_s() const { return window_s_; }

  SlidingWindowHistogram(const SlidingWindowHistogram&) = delete;
  SlidingWindowHistogram& operator=(const SlidingWindowHistogram&) = delete;

 private:
  struct Slice;

  /// Seconds on the process-steady clock (shared with Observe/Snapshot).
  static double NowSeconds();

  Slice* SliceForSlot(int64_t slot);

  std::vector<double> bounds_;
  double window_s_;
  double slice_span_s_;
  int slice_count_;
  std::unique_ptr<Slice[]> slices_;
  std::mutex rotate_mutex_;  ///< serializes slice resets, nothing else
};

/// FAIRCLEAN_METRICS_WINDOW_S (seconds the scrape window covers), default
/// 60, clamped to [1, 3600]. Lenient parsing: obs sits below common, so
/// this is std::getenv, not env.h.
double DefaultMetricsWindowSeconds();

/// Percentile estimate from a merged bucket distribution: the upper bound
/// of the bucket holding the p-th observation, clamped to [min, max].
/// Shared by Histogram and window snapshots.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& bucket_counts,
                             uint64_t count, double min, double max,
                             double p);

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_WINDOW_H_
