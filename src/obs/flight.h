#ifndef FAIRCLEAN_OBS_FLIGHT_H_
#define FAIRCLEAN_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fairclean {
namespace obs {

/// Always-on crash flight recorder (DESIGN.md §14): every thread owns a
/// lock-free ring of compact 16-byte binary events (span begin/end, fault
/// fires, store transaction commits/rollbacks, request sheds, journal
/// checkpoints). The enabled cost per event is a clock read plus a handful
/// of stores into thread-local memory — no locks, no allocation after the
/// ring exists — so the recorder stays armed in production and the last
/// seconds before a crash are always reconstructible.
///
/// The rings are dumped to a single binary file (`fairclean.flight` by
/// default) on a fatal signal, on deadline exhaustion, or on an explicit
/// request (the server's `flight` op). Dumps go through a temp file and a
/// rename, so a reader finds a complete dump or none — never a torn one.
/// FAIRCLEAN_FLIGHT overrides the dump path ("off" disables the recorder);
/// FAIRCLEAN_FLIGHT_EVENTS sizes the per-thread ring (default 4096 events,
/// rounded up to a power of two).

enum class FlightEventType : uint8_t {
  kSpanBegin = 1,    ///< site = span category; arg = span depth
  kSpanEnd = 2,      ///< site = span category; arg = duration in us
  kFault = 3,        ///< site = "fault:<site>"; injected fault fired
  kTxnCommit = 4,    ///< site = "store.txn"; arg = committed txn id
  kTxnRollback = 5,  ///< site = "store.txn"; arg = rolled-back txn id
  kShed = 6,         ///< site = "serve.shed"; admission or connection shed
  kCheckpoint = 7,   ///< site = "exec.checkpoint"; journal snapshot written
  kDeadline = 8,     ///< site names the layer that tripped the deadline
  kMark = 9,         ///< free-form marker (tests, tools)
};

/// Human-readable name of an event type ("span_begin", ...); "?" when the
/// byte does not decode (torn ring entry).
const char* FlightEventTypeName(uint8_t type);

/// One ring slot, exactly as serialized: 16 bytes, little-endian fields.
struct FlightEntry {
  uint64_t ts_us = 0;  ///< microseconds since the trace epoch
  uint16_t site = 0;   ///< index into the interned site table
  uint8_t type = 0;    ///< FlightEventType
  uint8_t reserved = 0;
  uint32_t arg = 0;    ///< type-specific payload
};
static_assert(sizeof(FlightEntry) == 16, "flight entries are 16 bytes");

namespace internal {
extern std::atomic<bool> g_flight_enabled;
}  // namespace internal

/// Whole cost of a disabled recorder at every instrumentation point.
inline bool FlightEnabled() {
  return internal::g_flight_enabled.load(std::memory_order_relaxed);
}

class FlightRecorder {
 public:
  /// Reads FAIRCLEAN_FLIGHT / FAIRCLEAN_FLIGHT_EVENTS and arms the
  /// recorder (on unless FAIRCLEAN_FLIGHT is "off"/"0"/"none"). Idempotent;
  /// called from InitTraceFromEnv so every instrumented binary arms it.
  static void Init();

  /// Test/bench hooks: force the recorder on (fresh rings for threads that
  /// record afterwards keep `capacity` entries) or off. Rings already
  /// owned by live threads keep their capacity.
  static void Enable(size_t capacity = 4096);
  static void Disable();

  /// Interns `name` into the site table and returns its stable index.
  /// First call per name takes a mutex; later calls are a lock-free scan.
  /// The table is bounded; on overflow events land on site 0 ("?").
  static uint16_t Site(const std::string& name);

  /// Site id for a span category string. Caches by pointer identity, so
  /// passing string literals (as TraceSpan does) skips even the site-table
  /// scan on the hot path.
  static uint16_t SiteForCategory(const char* category);

  /// Appends one event to the calling thread's ring. No-op when disabled.
  static void Record(FlightEventType type, uint16_t site, uint32_t arg = 0);

  /// Installs handlers for SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT that dump
  /// the rings to the configured path (async-signal-safe: raw syscalls
  /// only) and then re-raise with default disposition.
  static void InstallCrashHandler();

  /// Dumps all rings to `path` via temp-file + rename. `reason` is stored
  /// in the header (0 explicit, 1..99 = signal number, 100 deadline).
  /// Returns false and fills `*error` on IO failure.
  static bool Dump(const std::string& path, uint32_t reason,
                   std::string* error);

  /// Dump to the configured default path.
  static bool DumpDefault(uint32_t reason, std::string* error);

  /// The configured dump path (FAIRCLEAN_FLIGHT or "fairclean.flight").
  static std::string DefaultPath();

  /// Events recorded by the calling thread so far (tests).
  static uint64_t EventsRecordedOnThisThread();
};

/// Reason code carried by deadline-triggered dumps.
constexpr uint32_t kFlightReasonExplicit = 0;
constexpr uint32_t kFlightReasonDeadline = 100;

/// Decoded dump: the site table plus one chronological event list per
/// recording thread (ring order is unwound; entries that fail validation —
/// possible when a crashing thread raced a writer — are dropped).
struct FlightDump {
  uint32_t version = 0;
  uint32_t reason = 0;
  std::vector<std::string> sites;
  struct Thread {
    uint32_t tid = 0;
    uint64_t recorded = 0;  ///< total events ever recorded (>= events.size())
    std::vector<FlightEntry> events;
  };
  std::vector<Thread> threads;

  size_t TotalEvents() const;
};

/// Parses a dump file. Returns false and fills `*error` on missing file,
/// bad magic, or a structurally truncated file.
bool DecodeFlightFile(const std::string& path, FlightDump* dump,
                      std::string* error);

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_FLIGHT_H_
