#ifndef FAIRCLEAN_OBS_METRICS_H_
#define FAIRCLEAN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/window.h"

namespace fairclean {
namespace obs {

class Counter;

namespace internal {
extern std::atomic<bool> g_metrics_export_enabled;

/// Process-wide obs.dropped_samples counter (non-finite observations,
/// observations older than a sliding window). Lives in the global
/// registry; created on first drop.
Counter* DroppedSamplesCounter();

struct PeriodicExporter;
}  // namespace internal

/// True when the global registry will be exported at exit
/// (FAIRCLEAN_METRICS). Instrumentation that must pay a clock read to
/// record a value gates on TraceEnabled() || MetricsExportEnabled().
inline bool MetricsExportEnabled() {
  return internal::g_metrics_export_enabled.load(std::memory_order_relaxed);
}

/// Monotonic counter. Increment is one relaxed fetch_add (plus one more on
/// the parent sink when this counter lives in a scoped registry).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Increment(delta);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
  Counter* parent_ = nullptr;
};

/// Last-written-value gauge.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Set(value);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
  Gauge* parent_ = nullptr;
};

/// Histogram over fixed bucket bounds. An observation lands in the first
/// bucket whose upper bound is >= the value; values above the last bound go
/// to an implicit overflow bucket. Tracks count/sum/min/max exactly and
/// estimates percentiles from the bucket distribution.
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;

  /// Estimated value at percentile `p` in [0,100]: the upper bound of the
  /// bucket where the p-th observation falls, clamped to [min, max]. Exact
  /// for p=0/100; bucket-resolution otherwise.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  Histogram* parent_ = nullptr;
};

/// Point-in-time copy of one instrument, for export and for assembling
/// RunDiagnostics-style reports.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  double value = 0.0;     // counter / gauge
  uint64_t count = 0;     // histogram
  double sum = 0.0;       // histogram
  double min = 0.0;       // histogram (0 when count == 0)
  double max = 0.0;       // histogram (0 when count == 0)
  double p50 = 0.0;       // histogram
  double p95 = 0.0;       // histogram
  double p99 = 0.0;       // histogram
  bool windowed = false;  // true for sliding-window histograms
  double window_s = 0.0;  // seconds the snapshot covers (windowed only)
  std::vector<double> bounds;          // histogram
  std::vector<uint64_t> bucket_counts; // histogram, bounds.size() + 1
};

/// Named instrument registry. Instruments are created on first use and have
/// stable addresses for the registry's lifetime, so hot paths cache the
/// pointer and never re-lock.
///
/// Registries form a two-level hierarchy: a scoped registry (one per
/// StudyDriver) forwards every recorded value to the same-named instrument
/// in its parent — normally MetricsRegistry::Global(), the process-wide
/// sink that FAIRCLEAN_METRICS=<path> exports as JSONL at exit. Like the
/// tracer, metrics only observe: no randomness, no control-flow changes.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsRegistry* parent = nullptr);
  ~MetricsRegistry();

  /// Process-wide sink (reads FAIRCLEAN_METRICS on first use, and
  /// FAIRCLEAN_METRICS_INTERVAL_S to start the periodic exporter).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` are ascending upper bounds; used only on first creation.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);
  /// Sliding-window histogram covering the last `window_s` seconds
  /// (<= 0 picks the FAIRCLEAN_METRICS_WINDOW_S default). Window
  /// instruments do not forward to a parent registry: they live where
  /// scrapes happen (the serving layer uses Global()).
  SlidingWindowHistogram* GetWindowHistogram(
      const std::string& name, const std::vector<double>& bounds,
      double window_s = 0.0);

  /// Starts exporting this registry as JSONL to `path` at process exit.
  void EnableExport(const std::string& path);
  void DisableExport();
  std::string export_path() const;

  /// Spawns a background thread rewriting the export file every
  /// `interval_s` seconds (atomically, via temp file + rename), so a
  /// resident server leaves fresh snapshots behind even when it is later
  /// killed. Replaces nothing: the at-exit export still runs.
  void StartPeriodicExport(double interval_s);
  void StopPeriodicExport();

  /// Writes the export file immediately (SIGTERM / server shutdown path).
  /// Returns false when no export path is configured or the write fails.
  bool FlushExport();

  /// All instruments, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// One JSON object per line, e.g.
  ///   {"metric":"driver.retries","type":"counter","value":2}
  std::string ToJsonl() const;

  /// The same objects as ToJsonl, as one JSON array (the server's
  /// `metrics` op payload).
  std::string ToJsonArray() const;

  /// Prometheus-style text exposition: counters/gauges as single samples,
  /// histograms as cumulative le-labelled buckets + _sum/_count, windowed
  /// histograms as quantile-labelled summaries. Metric names are
  /// sanitized (non-alphanumerics become '_').
  std::string ToPrometheus() const;

  /// Writes ToJsonl() to `path`. Returns false on IO failure.
  bool WriteJsonlFile(const std::string& path) const;

  /// Human-readable one-line-per-instrument summary (bench reports).
  std::string FormatSummary() const;

  /// Bucket bounds in seconds suited to stage / span latencies
  /// (1ms .. 100s, roughly geometric).
  static const std::vector<double>& DefaultLatencyBounds();

 private:
  MetricsRegistry* parent_;
  mutable std::mutex mutex_;  // guards the maps and export path
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SlidingWindowHistogram>> windows_;
  std::string export_path_;
  bool atexit_registered_ = false;
  std::unique_ptr<internal::PeriodicExporter> exporter_;
};

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_METRICS_H_
