#ifndef FAIRCLEAN_OBS_TRACE_CONTEXT_H_
#define FAIRCLEAN_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fairclean {
namespace obs {

/// Request-scoped trace propagation (DESIGN.md §14). A trace id is minted
/// once per request at admission time (serving layer) and travels through
/// the stack as an ambient thread-local, not as a function argument: every
/// span or instant event recorded while a TraceContextScope is alive is
/// tagged with the scope's id, and ThreadPool::Submit captures the
/// submitter's id so work fanned out across workers stays attributed to
/// the request that caused it.
///
/// Id 0 means "no request context" (batch runs, tests); it is never minted
/// and never tagged.

/// The trace id active on the calling thread (0 = none).
uint64_t CurrentTraceId();

/// Sets the calling thread's trace id, returning the previous one. The
/// building block ThreadPool uses to propagate context into workers;
/// everything else should prefer the RAII scope below.
uint64_t SwapCurrentTraceId(uint64_t trace_id);

/// Process-unique, never-zero trace id. Ids are a startup-salted counter:
/// monotonic within a process and overwhelmingly unlikely to collide
/// across server restarts sharing one trace store consumer.
uint64_t MintTraceId();

/// Canonical wire form: 16 lowercase hex digits.
std::string TraceIdHex(uint64_t trace_id);

/// Parses TraceIdHex output (any-case hex, 1..16 digits). Returns 0 on
/// malformed input — which no minted id ever is.
uint64_t ParseTraceIdHex(const std::string& text);

/// RAII trace scope: spans recorded on this thread inside the scope carry
/// `trace_id`. Nesting restores the outer id on exit.
class TraceContextScope {
 public:
  explicit TraceContextScope(uint64_t trace_id)
      : previous_(SwapCurrentTraceId(trace_id)) {}
  ~TraceContextScope() { SwapCurrentTraceId(previous_); }

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  uint64_t previous_;
};

/// One retained span of a completed (or in-flight) request, kept by the
/// in-memory trace store so the serving layer can answer "why was this
/// request slow" from the trace id alone.
struct StoredSpan {
  std::string name;
  std::string category;
  char phase = 'X';    ///< 'X' complete span, 'i' instant event
  uint32_t tid = 0;    ///< tracer thread id (matches the trace file)
  uint32_t depth = 0;  ///< span-nesting depth on its thread (root = 0)
  int64_t ts_us = 0;   ///< start, microseconds since the trace epoch
  int64_t dur_us = 0;  ///< 0 for instants
};

/// Turns on per-trace span retention: spans recorded under a non-zero
/// trace id are kept in a bounded in-memory store (`max_traces` most
/// recent ids, each capped at `max_spans` spans — beyond the cap a trace
/// counts but drops further spans). Independent of FAIRCLEAN_TRACE file
/// tracing; the advisor server enables it at startup to serve the `trace`
/// op. Idempotent; new limits apply to traces recorded afterwards.
void EnableTraceStore(size_t max_traces = 256, size_t max_spans = 512);
void DisableTraceStore();
bool TraceStoreEnabled();

/// Spans retained for `trace_id`, sorted by (ts_us, depth); nullopt when
/// the id was never recorded or has been evicted.
std::optional<std::vector<StoredSpan>> TraceStoreGet(uint64_t trace_id);

/// Retained trace ids, most recent last.
std::vector<uint64_t> TraceStoreIds();

namespace internal {
/// Records one span into the trace store; called by the tracer when the
/// store is enabled and a trace id is active. Not for direct use.
void TraceStoreRecord(uint64_t trace_id, StoredSpan span);
}  // namespace internal

}  // namespace obs
}  // namespace fairclean

#endif  // FAIRCLEAN_OBS_TRACE_CONTEXT_H_
