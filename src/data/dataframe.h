#ifndef FAIRCLEAN_DATA_DATAFRAME_H_
#define FAIRCLEAN_DATA_DATAFRAME_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/column.h"

namespace fairclean {

/// A named collection of equal-length columns — the in-memory table that
/// flows through detection, repair, encoding and training.
///
/// Rows are addressed positionally; all row-subset operations (Take,
/// FilterRows) produce new frames, so the dirty and repaired versions of a
/// dataset in the experiment protocol are independent copies.
class DataFrame {
 public:
  DataFrame() = default;

  /// Appends a column. Fails if a column of the same name exists or the
  /// length disagrees with existing columns.
  Status AddColumn(Column column);

  /// Replaces the column with the same name. Fails if absent or length
  /// mismatch.
  Status ReplaceColumn(Column column);

  /// Removes the named column. Fails if absent.
  Status DropColumn(const std::string& name);

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }
  bool HasColumn(const std::string& name) const;

  /// Position of the named column.
  Result<size_t> ColumnIndex(const std::string& name) const;

  const Column& column(size_t index) const { return columns_[index]; }
  Column& mutable_column(size_t index) { return columns_[index]; }

  /// The named column; dies if absent (use HasColumn to probe).
  const Column& column(const std::string& name) const;
  Column& mutable_column(const std::string& name);

  /// Names of all columns in order.
  std::vector<std::string> column_names() const;

  /// A new frame containing rows at `indices` (repetition allowed).
  DataFrame Take(const std::vector<size_t>& indices) const;

  /// A new frame containing rows where keep[row] is true.
  DataFrame FilterRows(const std::vector<bool>& keep) const;

  /// Row indices with at least one missing cell in any column.
  std::vector<size_t> RowsWithMissing() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DATA_DATAFRAME_H_
