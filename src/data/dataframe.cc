#include "data/dataframe.h"

#include <cstddef>

#include "common/check.h"
#include "common/strings.h"

namespace fairclean {

Status DataFrame::AddColumn(Column column) {
  if (index_.count(column.name()) > 0) {
    return Status::AlreadyExists("column already exists: " + column.name());
  }
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(StrFormat(
        "column '%s' has %zu rows, frame has %zu", column.name().c_str(),
        column.size(), num_rows()));
  }
  index_.emplace(column.name(), columns_.size());
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status DataFrame::ReplaceColumn(Column column) {
  auto it = index_.find(column.name());
  if (it == index_.end()) {
    return Status::NotFound("no such column: " + column.name());
  }
  if (column.size() != num_rows()) {
    return Status::InvalidArgument(StrFormat(
        "column '%s' has %zu rows, frame has %zu", column.name().c_str(),
        column.size(), num_rows()));
  }
  columns_[it->second] = std::move(column);
  return Status::OK();
}

Status DataFrame::DropColumn(const std::string& name) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  size_t pos = it->second;
  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(pos));
  index_.erase(it);
  for (auto& entry : index_) {
    if (entry.second > pos) --entry.second;
  }
  return Status::OK();
}

bool DataFrame::HasColumn(const std::string& name) const {
  return index_.count(name) > 0;
}

Result<size_t> DataFrame::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no such column: " + name);
  }
  return it->second;
}

const Column& DataFrame::column(const std::string& name) const {
  auto it = index_.find(name);
  FC_CHECK_MSG(it != index_.end(), name.c_str());
  return columns_[it->second];
}

Column& DataFrame::mutable_column(const std::string& name) {
  auto it = index_.find(name);
  FC_CHECK_MSG(it != index_.end(), name.c_str());
  return columns_[it->second];
}

std::vector<std::string> DataFrame::column_names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& column : columns_) names.push_back(column.name());
  return names;
}

DataFrame DataFrame::Take(const std::vector<size_t>& indices) const {
  DataFrame out;
  for (const Column& column : columns_) {
    Status st = out.AddColumn(column.Take(indices));
    FC_CHECK(st.ok());
  }
  return out;
}

DataFrame DataFrame::FilterRows(const std::vector<bool>& keep) const {
  FC_CHECK_EQ(keep.size(), num_rows());
  std::vector<size_t> indices;
  for (size_t row = 0; row < keep.size(); ++row) {
    if (keep[row]) indices.push_back(row);
  }
  return Take(indices);
}

std::vector<size_t> DataFrame::RowsWithMissing() const {
  std::vector<size_t> rows;
  for (size_t row = 0; row < num_rows(); ++row) {
    for (const Column& column : columns_) {
      if (column.IsMissing(row)) {
        rows.push_back(row);
        break;
      }
    }
  }
  return rows;
}

}  // namespace fairclean
