#ifndef FAIRCLEAN_DATA_COLUMN_H_
#define FAIRCLEAN_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace fairclean {

/// The two column kinds supported by the tabular substrate, mirroring the
/// numeric/categorical distinction that the paper's cleaning methods rely on
/// (e.g. mean imputation applies to numeric columns, dummy imputation to
/// categorical ones).
enum class ColumnType { kNumeric, kCategorical };

/// A single named column of a DataFrame.
///
/// Numeric columns store doubles and represent missing cells as NaN.
/// Categorical columns are dictionary-encoded: each cell holds a code into
/// the dictionary, and missing cells hold Column::kMissingCode. This is the
/// same cell-level missingness model as pandas/NumPy that the paper's
/// detection and imputation methods assume.
class Column {
 public:
  static constexpr int32_t kMissingCode = -1;

  /// Creates a numeric column; NaN entries denote missing values.
  static Column Numeric(std::string name, std::vector<double> values);

  /// Creates a categorical column from codes and a dictionary. Codes must
  /// be kMissingCode or in [0, dictionary.size()).
  static Column Categorical(std::string name, std::vector<int32_t> codes,
                            std::vector<std::string> dictionary);

  /// Creates a categorical column from raw string values; `missing_token`
  /// values become missing cells. The dictionary is built in order of first
  /// appearance.
  static Column FromStrings(std::string name,
                            const std::vector<std::string>& values,
                            const std::string& missing_token = "");

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  ColumnType type() const { return type_; }
  bool is_numeric() const { return type_ == ColumnType::kNumeric; }
  bool is_categorical() const { return type_ == ColumnType::kCategorical; }
  size_t size() const {
    return is_numeric() ? values_.size() : codes_.size();
  }

  /// True if the cell at `row` is missing (NaN / kMissingCode).
  bool IsMissing(size_t row) const;
  /// Number of missing cells.
  size_t MissingCount() const;

  /// Numeric accessors; valid only for numeric columns.
  double Value(size_t row) const {
    FC_CHECK(is_numeric());
    return values_[row];
  }
  void SetValue(size_t row, double value) {
    FC_CHECK(is_numeric());
    values_[row] = value;
  }
  const std::vector<double>& values() const {
    FC_CHECK(is_numeric());
    return values_;
  }

  /// Categorical accessors; valid only for categorical columns.
  int32_t Code(size_t row) const {
    FC_CHECK(is_categorical());
    return codes_[row];
  }
  void SetCode(size_t row, int32_t code);
  const std::vector<int32_t>& codes() const {
    FC_CHECK(is_categorical());
    return codes_;
  }
  const std::vector<std::string>& dictionary() const {
    FC_CHECK(is_categorical());
    return dictionary_;
  }
  /// The dictionary entry for `code`; "<missing>" for kMissingCode.
  const std::string& CategoryName(int32_t code) const;
  /// Looks up the code of `category`, or kMissingCode if absent.
  int32_t CodeOf(const std::string& category) const;
  /// Returns the code of `category`, appending it to the dictionary if new.
  /// Used by dummy imputation to introduce an explicit missing-indicator
  /// category.
  int32_t GetOrAddCategory(const std::string& category);

  /// Marks the cell at `row` missing.
  void SetMissing(size_t row);

  /// Renders the cell as a string ("" for missing). Numeric cells use
  /// shortest round-trip formatting.
  std::string CellToString(size_t row) const;

  /// A new column containing rows at `indices` (with repetition allowed).
  Column Take(const std::vector<size_t>& indices) const;

 private:
  Column() = default;

  std::string name_;
  ColumnType type_ = ColumnType::kNumeric;
  std::vector<double> values_;           // numeric payload
  std::vector<int32_t> codes_;           // categorical payload
  std::vector<std::string> dictionary_;  // categorical dictionary
};

}  // namespace fairclean

#endif  // FAIRCLEAN_DATA_COLUMN_H_
