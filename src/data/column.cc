#include "data/column.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace fairclean {

namespace {
const std::string kMissingName = "<missing>";
}  // namespace

Column Column::Numeric(std::string name, std::vector<double> values) {
  Column col;
  col.name_ = std::move(name);
  col.type_ = ColumnType::kNumeric;
  col.values_ = std::move(values);
  return col;
}

Column Column::Categorical(std::string name, std::vector<int32_t> codes,
                           std::vector<std::string> dictionary) {
  Column col;
  col.name_ = std::move(name);
  col.type_ = ColumnType::kCategorical;
  for (int32_t code : codes) {
    FC_CHECK(code == kMissingCode ||
             (code >= 0 && static_cast<size_t>(code) < dictionary.size()));
  }
  col.codes_ = std::move(codes);
  col.dictionary_ = std::move(dictionary);
  return col;
}

Column Column::FromStrings(std::string name,
                           const std::vector<std::string>& values,
                           const std::string& missing_token) {
  std::vector<int32_t> codes;
  codes.reserve(values.size());
  std::vector<std::string> dictionary;
  std::unordered_map<std::string, int32_t> index;
  for (const std::string& value : values) {
    if (value == missing_token) {
      codes.push_back(kMissingCode);
      continue;
    }
    auto it = index.find(value);
    if (it == index.end()) {
      int32_t code = static_cast<int32_t>(dictionary.size());
      dictionary.push_back(value);
      index.emplace(value, code);
      codes.push_back(code);
    } else {
      codes.push_back(it->second);
    }
  }
  return Categorical(std::move(name), std::move(codes), std::move(dictionary));
}

bool Column::IsMissing(size_t row) const {
  if (is_numeric()) return std::isnan(values_[row]);
  return codes_[row] == kMissingCode;
}

size_t Column::MissingCount() const {
  size_t count = 0;
  for (size_t row = 0; row < size(); ++row) {
    if (IsMissing(row)) ++count;
  }
  return count;
}

void Column::SetCode(size_t row, int32_t code) {
  FC_CHECK(is_categorical());
  FC_CHECK(code == kMissingCode ||
           (code >= 0 && static_cast<size_t>(code) < dictionary_.size()));
  codes_[row] = code;
}

const std::string& Column::CategoryName(int32_t code) const {
  FC_CHECK(is_categorical());
  if (code == kMissingCode) return kMissingName;
  FC_CHECK(code >= 0 && static_cast<size_t>(code) < dictionary_.size());
  return dictionary_[static_cast<size_t>(code)];
}

int32_t Column::CodeOf(const std::string& category) const {
  FC_CHECK(is_categorical());
  for (size_t i = 0; i < dictionary_.size(); ++i) {
    if (dictionary_[i] == category) return static_cast<int32_t>(i);
  }
  return kMissingCode;
}

int32_t Column::GetOrAddCategory(const std::string& category) {
  FC_CHECK(is_categorical());
  int32_t existing = CodeOf(category);
  if (existing != kMissingCode) return existing;
  dictionary_.push_back(category);
  return static_cast<int32_t>(dictionary_.size() - 1);
}

void Column::SetMissing(size_t row) {
  if (is_numeric()) {
    values_[row] = std::nan("");
  } else {
    codes_[row] = kMissingCode;
  }
}

std::string Column::CellToString(size_t row) const {
  if (IsMissing(row)) return "";
  if (is_categorical()) return CategoryName(codes_[row]);
  double v = values_[row];
  // Integral values print without a fractional part for readable CSVs.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Column Column::Take(const std::vector<size_t>& indices) const {
  Column out;
  out.name_ = name_;
  out.type_ = type_;
  if (is_numeric()) {
    out.values_.reserve(indices.size());
    for (size_t index : indices) {
      FC_CHECK_LT(index, values_.size());
      out.values_.push_back(values_[index]);
    }
  } else {
    out.dictionary_ = dictionary_;
    out.codes_.reserve(indices.size());
    for (size_t index : indices) {
      FC_CHECK_LT(index, codes_.size());
      out.codes_.push_back(codes_[index]);
    }
  }
  return out;
}

}  // namespace fairclean
