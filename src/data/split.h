#ifndef FAIRCLEAN_DATA_SPLIT_H_
#define FAIRCLEAN_DATA_SPLIT_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace fairclean {

/// Row indices of a train/test partition.
struct TrainTestIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Randomly partitions {0, ..., n-1} into train/test with `test_fraction`
/// of rows in the test set (at least one row each when n >= 2).
TrainTestIndices SplitTrainTest(size_t n, double test_fraction, Rng* rng);

/// K contiguous folds over a random permutation of {0, ..., n-1}. Fold f's
/// `test` holds the f-th block; `train` holds the rest. Fold sizes differ by
/// at most one.
std::vector<TrainTestIndices> KFoldIndices(size_t n, size_t k, Rng* rng);

}  // namespace fairclean

#endif  // FAIRCLEAN_DATA_SPLIT_H_
