#ifndef FAIRCLEAN_DATA_CSV_H_
#define FAIRCLEAN_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataframe.h"

namespace fairclean {

/// Options controlling CSV parsing.
struct CsvOptions {
  char delimiter = ',';
  /// Cell values treated as missing (in addition to the empty string).
  std::vector<std::string> missing_tokens = {"", "NA", "NaN", "NULL", "?"};
};

/// Parses CSV `text` (first line = header) into a DataFrame. A column is
/// numeric if every non-missing cell parses as a double, categorical
/// otherwise. Quoted fields with embedded delimiters/quotes are supported.
Result<DataFrame> ReadCsvFromString(const std::string& text,
                                    const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options = {});

/// Serializes a DataFrame to CSV text (missing cells render empty).
std::string WriteCsvToString(const DataFrame& frame,
                             const CsvOptions& options = {});

/// Writes a DataFrame to a CSV file.
Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace fairclean

#endif  // FAIRCLEAN_DATA_CSV_H_
