#include "data/split.h"

#include <cstddef>

#include "common/check.h"
#include "obs/trace.h"

namespace fairclean {

TrainTestIndices SplitTrainTest(size_t n, double test_fraction, Rng* rng) {
  obs::TraceSpan span("data", "SplitTrainTest");
  FC_CHECK_GT(n, 0u);
  FC_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> perm = rng->Permutation(n);
  size_t test_size = static_cast<size_t>(
      static_cast<double>(n) * test_fraction);
  if (n >= 2) {
    if (test_size == 0) test_size = 1;
    if (test_size == n) test_size = n - 1;
  }
  TrainTestIndices out;
  out.test.assign(perm.begin(), perm.begin() + static_cast<ptrdiff_t>(test_size));
  out.train.assign(perm.begin() + static_cast<ptrdiff_t>(test_size), perm.end());
  return out;
}

std::vector<TrainTestIndices> KFoldIndices(size_t n, size_t k, Rng* rng) {
  obs::TraceSpan span("data", "KFoldIndices");
  FC_CHECK_GE(k, 2u);
  FC_CHECK_GE(n, k);
  std::vector<size_t> perm = rng->Permutation(n);
  std::vector<TrainTestIndices> folds(k);
  size_t base = n / k;
  size_t extra = n % k;
  size_t offset = 0;
  for (size_t f = 0; f < k; ++f) {
    size_t fold_size = base + (f < extra ? 1 : 0);
    for (size_t i = 0; i < n; ++i) {
      bool in_fold = i >= offset && i < offset + fold_size;
      if (in_fold) {
        folds[f].test.push_back(perm[i]);
      } else {
        folds[f].train.push_back(perm[i]);
      }
    }
    offset += fold_size;
  }
  return folds;
}

}  // namespace fairclean
