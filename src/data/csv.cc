#include "data/csv.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fairclean {

namespace {

// Splits one CSV record, honoring double-quote quoting with "" escapes.
Result<std::vector<std::string>> SplitRecord(const std::string& line,
                                             char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields.push_back(std::move(field));
  return fields;
}

// Splits raw CSV text into records. A '\n' ends a record only outside
// quotes — an embedded newline in a quoted field is part of the field,
// which the previous getline-based splitting broke (WriteCsvToString could
// emit such fields but ReadCsvFromString could not read them back). The
// quote state mirrors SplitRecord exactly: '"' opens a quote only at field
// start, and "" inside quotes is an escaped quote. A '\r' immediately
// before a record-ending '\n' (CRLF input) is stripped; any other '\r' is
// field data.
std::vector<std::string> SplitRecords(const std::string& text,
                                      char delimiter) {
  std::vector<std::string> records;
  std::string record;
  bool in_quotes = false;
  bool field_empty = true;  // is the current field's content empty so far?
  auto end_record = [&]() {
    if (!record.empty() && record.back() == '\r') record.pop_back();
    records.push_back(std::move(record));
    record.clear();
    field_empty = true;
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      record.push_back(c);
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          record.push_back('"');
          ++i;
          field_empty = false;
        } else {
          in_quotes = false;
        }
      } else {
        field_empty = false;
      }
    } else if (c == '\n') {
      end_record();
    } else {
      record.push_back(c);
      if (c == '"' && field_empty) {
        in_quotes = true;
      } else if (c == delimiter) {
        field_empty = true;
      } else {
        field_empty = false;
      }
    }
  }
  // Final record without a trailing newline. An unterminated quote flows
  // into SplitRecord, which reports it as a parse error.
  if (!record.empty()) end_record();
  return records;
}

bool IsMissingToken(const std::string& value, const CsvOptions& options) {
  for (const std::string& token : options.missing_tokens) {
    if (value == token) return true;
  }
  return false;
}

bool ParseDouble(const std::string& text, double* out) {
  const char* begin = text.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end == begin) return false;
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') return false;
  *out = value;
  return true;
}

std::string EscapeField(const std::string& value, char delimiter) {
  // '\r' forces quoting so a field ending in '\r' survives the reader's
  // CRLF stripping.
  bool needs_quotes = value.find(delimiter) != std::string::npos ||
                      value.find('"') != std::string::npos ||
                      value.find('\n') != std::string::npos ||
                      value.find('\r') != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

Result<DataFrame> ReadCsvFromString(const std::string& text,
                                    const CsvOptions& options) {
  obs::TraceSpan span("data", "ReadCsvFromString");
  obs::MetricsRegistry::Global().GetCounter("csv.bytes_parsed")
      ->Increment(text.size());
  // Fault-injection site: lets tests prove callers survive a parse failure
  // (all real parse errors below already propagate as Status).
  FC_RETURN_IF_ERROR(FaultInjector::Global().Inject("csv_parse"));
  std::vector<std::string> records = SplitRecords(text, options.delimiter);
  if (records.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }
  FC_ASSIGN_OR_RETURN(std::vector<std::string> header,
                      SplitRecord(records[0], options.delimiter));
  size_t num_columns = header.size();
  std::vector<std::vector<std::string>> cells(num_columns);
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].empty()) continue;
    FC_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        SplitRecord(records[i], options.delimiter));
    if (fields.size() != num_columns) {
      return Status::InvalidArgument(
          StrFormat("row %zu has %zu fields, header has %zu", i,
                    fields.size(), num_columns));
    }
    for (size_t c = 0; c < num_columns; ++c) {
      cells[c].push_back(std::move(fields[c]));
    }
  }

  DataFrame frame;
  for (size_t c = 0; c < num_columns; ++c) {
    bool numeric = true;
    bool any_value = false;
    for (const std::string& value : cells[c]) {
      if (IsMissingToken(value, options)) continue;
      any_value = true;
      double parsed;
      if (!ParseDouble(value, &parsed)) {
        numeric = false;
        break;
      }
    }
    if (numeric && any_value) {
      std::vector<double> values;
      values.reserve(cells[c].size());
      for (const std::string& value : cells[c]) {
        if (IsMissingToken(value, options)) {
          values.push_back(std::nan(""));
        } else {
          double parsed = 0.0;
          ParseDouble(value, &parsed);
          values.push_back(parsed);
        }
      }
      FC_RETURN_IF_ERROR(
          frame.AddColumn(Column::Numeric(header[c], std::move(values))));
    } else {
      // Normalize every configured missing token to the empty string so
      // FromStrings maps them all to missing cells.
      std::vector<std::string> normalized;
      normalized.reserve(cells[c].size());
      for (const std::string& value : cells[c]) {
        normalized.push_back(IsMissingToken(value, options) ? "" : value);
      }
      FC_RETURN_IF_ERROR(
          frame.AddColumn(Column::FromStrings(header[c], normalized)));
    }
  }
  return frame;
}

Result<DataFrame> ReadCsvFile(const std::string& path,
                              const CsvOptions& options) {
  std::ifstream stream(path);
  if (!stream) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return ReadCsvFromString(buffer.str(), options);
}

std::string WriteCsvToString(const DataFrame& frame,
                             const CsvOptions& options) {
  std::string out;
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    if (c > 0) out.push_back(options.delimiter);
    out += EscapeField(frame.column(c).name(), options.delimiter);
  }
  out.push_back('\n');
  for (size_t row = 0; row < frame.num_rows(); ++row) {
    for (size_t c = 0; c < frame.num_columns(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += EscapeField(frame.column(c).CellToString(row), options.delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const DataFrame& frame, const std::string& path,
                    const CsvOptions& options) {
  obs::TraceSpan span("data", [&] { return "WriteCsvFile " + path; });
  std::ofstream stream(path);
  if (!stream) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  std::string text = WriteCsvToString(frame, options);
  stream << text;
  if (!stream) {
    return Status::IoError("write failed: " + path);
  }
  obs::MetricsRegistry::Global().GetCounter("csv.bytes_written")
      ->Increment(text.size());
  return Status::OK();
}

}  // namespace fairclean
