#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace fairclean {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

// Series expansion of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a, x); converges quickly for x >= a + 1.
// Modified Lentz's method.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for the incomplete beta function (Numerical Recipes
// betacf), evaluated with modified Lentz's method.
double BetaContinuedFraction(double a, double b, double x) {
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  FC_CHECK_GT(a, 0.0);
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  FC_CHECK_GT(a, 0.0);
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  FC_CHECK_GT(a, 0.0);
  FC_CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double log_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                     a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(log_front);
  // Use the symmetry relation to stay in the rapidly-converging regime.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double ChiSquareSurvival(double x, double df) {
  FC_CHECK_GT(df, 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double StudentTTwoSidedPValue(double t, double df) {
  FC_CHECK_GT(df, 0.0);
  if (!std::isfinite(t)) return 0.0;
  double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace fairclean
