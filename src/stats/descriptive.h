#ifndef FAIRCLEAN_STATS_DESCRIPTIVE_H_
#define FAIRCLEAN_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fairclean {

/// Descriptive statistics over numeric vectors. All functions skip NaN
/// entries (missing cells) and fail if no finite values remain — matching
/// the pandas `skipna` semantics the paper's Python stack relies on.

/// Arithmetic mean of the finite entries.
Result<double> Mean(const std::vector<double>& values);

/// Unbiased sample variance (n-1 denominator) of the finite entries;
/// requires at least 2.
Result<double> SampleVariance(const std::vector<double>& values);

/// Sample standard deviation.
Result<double> SampleStdDev(const std::vector<double>& values);

/// Linear-interpolated percentile (NumPy 'linear' method), p in [0, 100].
Result<double> Percentile(const std::vector<double>& values, double p);

/// Median = 50th percentile.
Result<double> Median(const std::vector<double>& values);

/// Interquartile range p75 - p25.
Result<double> Iqr(const std::vector<double>& values);

/// Most frequent finite value; ties broken towards the smaller value.
Result<double> NumericMode(const std::vector<double>& values);

/// Most frequent non-missing code; ties broken towards the smaller code.
/// `missing_code` entries are skipped.
Result<int32_t> CodeMode(const std::vector<int32_t>& codes,
                         int32_t missing_code);

}  // namespace fairclean

#endif  // FAIRCLEAN_STATS_DESCRIPTIVE_H_
