#ifndef FAIRCLEAN_STATS_TESTS_H_
#define FAIRCLEAN_STATS_TESTS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace fairclean {

/// Outcome of a significance test.
struct TestResult {
  double statistic = 0.0;
  double p_value = 1.0;

  /// Convenience: significant at level `alpha`.
  bool SignificantAt(double alpha) const { return p_value < alpha; }
};

/// A 2x2 contingency table:
///
///              flagged   not flagged
///   group A      a            b
///   group B      c            d
///
/// Used in RQ1 to compare how often an error detector flags tuples from the
/// privileged vs the disadvantaged group.
struct ContingencyTable2x2 {
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  int64_t d = 0;
};

/// G-test (likelihood-ratio chi-square, the "G^2 significance test" of the
/// paper's Section III) for independence on a 2x2 table, 1 degree of
/// freedom. G^2 = 2 * sum O * ln(O / E); cells with O = 0 contribute 0.
/// Fails if any margin is zero (independence is undefined).
Result<TestResult> GTest2x2(const ContingencyTable2x2& table);

/// Pearson chi-square test on the same table; provided as a cross-check for
/// the G-test (they agree asymptotically).
Result<TestResult> ChiSquareTest2x2(const ContingencyTable2x2& table);

/// Two-sided paired-sample t-test on equally long score vectors, as used by
/// CleanML/the paper to compare dirty-vs-repaired metric scores across
/// repeated runs. Fails with InvalidArgument (never aborts) if fewer than 2
/// pairs, the sizes differ, or any score is non-finite — NaN scores reach
/// this code from degenerate repeats (empty group slice, single-class fold)
/// and must surface as a recoverable error, not garbage p-values. A zero
/// variance of differences is well-defined: p = 1 when the mean difference
/// is zero and p = 0 otherwise.
Result<TestResult> PairedTTest(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Bonferroni-corrected significance level: alpha / num_hypotheses.
double BonferroniAlpha(double alpha, size_t num_hypotheses);

}  // namespace fairclean

#endif  // FAIRCLEAN_STATS_TESTS_H_
