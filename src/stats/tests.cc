#include "stats/tests.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"
#include "stats/distributions.h"

namespace fairclean {

namespace {

struct Expected2x2 {
  double ea, eb, ec, ed;
};

Result<Expected2x2> ExpectedCounts(const ContingencyTable2x2& t) {
  if (t.a < 0 || t.b < 0 || t.c < 0 || t.d < 0) {
    return Status::InvalidArgument("negative cell count");
  }
  double n = static_cast<double>(t.a + t.b + t.c + t.d);
  double row1 = static_cast<double>(t.a + t.b);
  double row2 = static_cast<double>(t.c + t.d);
  double col1 = static_cast<double>(t.a + t.c);
  double col2 = static_cast<double>(t.b + t.d);
  if (row1 == 0 || row2 == 0 || col1 == 0 || col2 == 0) {
    return Status::InvalidArgument("zero margin in contingency table");
  }
  Expected2x2 e;
  e.ea = row1 * col1 / n;
  e.eb = row1 * col2 / n;
  e.ec = row2 * col1 / n;
  e.ed = row2 * col2 / n;
  return e;
}

double GTerm(int64_t observed, double expected) {
  if (observed == 0) return 0.0;
  double o = static_cast<double>(observed);
  return o * std::log(o / expected);
}

double ChiTerm(int64_t observed, double expected) {
  double diff = static_cast<double>(observed) - expected;
  return diff * diff / expected;
}

}  // namespace

Result<TestResult> GTest2x2(const ContingencyTable2x2& table) {
  FC_ASSIGN_OR_RETURN(Expected2x2 e, ExpectedCounts(table));
  double g2 = 2.0 * (GTerm(table.a, e.ea) + GTerm(table.b, e.eb) +
                     GTerm(table.c, e.ec) + GTerm(table.d, e.ed));
  if (g2 < 0.0) g2 = 0.0;  // guard tiny negative rounding
  TestResult result;
  result.statistic = g2;
  result.p_value = ChiSquareSurvival(g2, 1.0);
  return result;
}

Result<TestResult> ChiSquareTest2x2(const ContingencyTable2x2& table) {
  FC_ASSIGN_OR_RETURN(Expected2x2 e, ExpectedCounts(table));
  double chi2 = ChiTerm(table.a, e.ea) + ChiTerm(table.b, e.eb) +
                ChiTerm(table.c, e.ec) + ChiTerm(table.d, e.ed);
  TestResult result;
  result.statistic = chi2;
  result.p_value = ChiSquareSurvival(chi2, 1.0);
  return result;
}

Result<TestResult> PairedTTest(const std::vector<double>& x,
                               const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("paired t-test requires equal sizes");
  }
  size_t n = x.size();
  if (n < 2) {
    return Status::InvalidArgument("paired t-test requires at least 2 pairs");
  }
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) {
      return Status::InvalidArgument(StrFormat(
          "paired t-test requires finite scores (pair %zu is not)", i));
    }
  }
  double mean_diff = 0.0;
  for (size_t i = 0; i < n; ++i) mean_diff += x[i] - y[i];
  mean_diff /= static_cast<double>(n);
  double ss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = (x[i] - y[i]) - mean_diff;
    ss += d * d;
  }
  double var = ss / static_cast<double>(n - 1);
  TestResult result;
  if (var <= 0.0) {
    // All differences identical: degenerate but well-defined outcome.
    result.statistic = mean_diff == 0.0
                           ? 0.0
                           : std::copysign(
                                 std::numeric_limits<double>::infinity(),
                                 mean_diff);
    result.p_value = mean_diff == 0.0 ? 1.0 : 0.0;
    return result;
  }
  double se = std::sqrt(var / static_cast<double>(n));
  double t = mean_diff / se;
  result.statistic = t;
  result.p_value = StudentTTwoSidedPValue(t, static_cast<double>(n - 1));
  return result;
}

double BonferroniAlpha(double alpha, size_t num_hypotheses) {
  FC_CHECK_GT(num_hypotheses, 0u);
  return alpha / static_cast<double>(num_hypotheses);
}

}  // namespace fairclean
