#ifndef FAIRCLEAN_STATS_DISTRIBUTIONS_H_
#define FAIRCLEAN_STATS_DISTRIBUTIONS_H_

namespace fairclean {

/// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Regularized incomplete beta function I_x(a, b), 0 <= x <= 1.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: Pr[X >= x].
double ChiSquareSurvival(double x, double df);

/// Two-sided p-value of a Student-t statistic with `df` degrees of freedom:
/// Pr[|T| >= |t|].
double StudentTTwoSidedPValue(double t, double df);

/// CDF of the standard normal distribution.
double NormalCdf(double z);

}  // namespace fairclean

#endif  // FAIRCLEAN_STATS_DISTRIBUTIONS_H_
