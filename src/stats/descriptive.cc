#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace fairclean {

namespace {

std::vector<double> FiniteValues(const std::vector<double>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    if (std::isfinite(v)) out.push_back(v);
  }
  return out;
}

Status EmptyError() {
  return Status::InvalidArgument("no finite values");
}

}  // namespace

Result<double> Mean(const std::vector<double>& values) {
  double sum = 0.0;
  size_t count = 0;
  for (double v : values) {
    if (std::isfinite(v)) {
      sum += v;
      ++count;
    }
  }
  if (count == 0) return EmptyError();
  return sum / static_cast<double>(count);
}

Result<double> SampleVariance(const std::vector<double>& values) {
  std::vector<double> finite = FiniteValues(values);
  if (finite.size() < 2) {
    return Status::InvalidArgument("variance requires at least 2 values");
  }
  double mean = 0.0;
  for (double v : finite) mean += v;
  mean /= static_cast<double>(finite.size());
  double ss = 0.0;
  for (double v : finite) {
    double d = v - mean;
    ss += d * d;
  }
  return ss / static_cast<double>(finite.size() - 1);
}

Result<double> SampleStdDev(const std::vector<double>& values) {
  FC_ASSIGN_OR_RETURN(double var, SampleVariance(values));
  return std::sqrt(var);
}

Result<double> Percentile(const std::vector<double>& values, double p) {
  if (p < 0.0 || p > 100.0) {
    return Status::InvalidArgument("percentile must be in [0, 100]");
  }
  std::vector<double> finite = FiniteValues(values);
  if (finite.empty()) return EmptyError();
  std::sort(finite.begin(), finite.end());
  if (finite.size() == 1) return finite[0];
  double rank = p / 100.0 * static_cast<double>(finite.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, finite.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return finite[lo] + frac * (finite[hi] - finite[lo]);
}

Result<double> Median(const std::vector<double>& values) {
  return Percentile(values, 50.0);
}

Result<double> Iqr(const std::vector<double>& values) {
  FC_ASSIGN_OR_RETURN(double p75, Percentile(values, 75.0));
  FC_ASSIGN_OR_RETURN(double p25, Percentile(values, 25.0));
  return p75 - p25;
}

Result<double> NumericMode(const std::vector<double>& values) {
  std::map<double, size_t> counts;
  for (double v : values) {
    if (std::isfinite(v)) ++counts[v];
  }
  if (counts.empty()) return EmptyError();
  double best_value = counts.begin()->first;
  size_t best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

Result<int32_t> CodeMode(const std::vector<int32_t>& codes,
                         int32_t missing_code) {
  std::map<int32_t, size_t> counts;
  for (int32_t code : codes) {
    if (code != missing_code) ++counts[code];
  }
  if (counts.empty()) {
    return Status::InvalidArgument("no non-missing codes");
  }
  int32_t best_code = counts.begin()->first;
  size_t best_count = 0;
  for (const auto& [code, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_code = code;
    }
  }
  return best_code;
}

}  // namespace fairclean
