#include "core/impact.h"

#include "common/check.h"
#include "common/strings.h"
#include "stats/descriptive.h"
#include "stats/tests.h"

namespace fairclean {

const char* ImpactName(Impact impact) {
  switch (impact) {
    case Impact::kWorse:
      return "worse";
    case Impact::kInsignificant:
      return "insignificant";
    case Impact::kBetter:
      return "better";
  }
  return "?";
}

Result<Impact> ClassifyImpact(const std::vector<double>& dirty_scores,
                              const std::vector<double>& repaired_scores,
                              double alpha, bool higher_is_better) {
  FC_ASSIGN_OR_RETURN(TestResult test,
                      PairedTTest(repaired_scores, dirty_scores));
  if (!test.SignificantAt(alpha)) return Impact::kInsignificant;
  FC_ASSIGN_OR_RETURN(double mean_repaired, Mean(repaired_scores));
  FC_ASSIGN_OR_RETURN(double mean_dirty, Mean(dirty_scores));
  double delta = mean_repaired - mean_dirty;
  if (delta == 0.0) return Impact::kInsignificant;
  bool improved = higher_is_better ? delta > 0.0 : delta < 0.0;
  return improved ? Impact::kBetter : Impact::kWorse;
}

size_t ImpactTable::Index(Impact impact) {
  switch (impact) {
    case Impact::kWorse:
      return 0;
    case Impact::kInsignificant:
      return 1;
    case Impact::kBetter:
      return 2;
  }
  return 1;
}

void ImpactTable::Add(Impact fairness, Impact accuracy) {
  ++cells_[Index(fairness)][Index(accuracy)];
}

int64_t ImpactTable::cell(Impact fairness, Impact accuracy) const {
  return cells_[Index(fairness)][Index(accuracy)];
}

int64_t ImpactTable::RowTotal(Impact fairness) const {
  size_t r = Index(fairness);
  return cells_[r][0] + cells_[r][1] + cells_[r][2];
}

int64_t ImpactTable::ColumnTotal(Impact accuracy) const {
  size_t c = Index(accuracy);
  return cells_[0][c] + cells_[1][c] + cells_[2][c];
}

int64_t ImpactTable::Total() const {
  int64_t total = 0;
  for (const auto& row : cells_) {
    for (int64_t cell : row) total += cell;
  }
  return total;
}

double ImpactTable::CellPercent(Impact fairness, Impact accuracy) const {
  int64_t total = Total();
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(cell(fairness, accuracy)) /
         static_cast<double>(total);
}

ImpactTable& ImpactTable::operator+=(const ImpactTable& other) {
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      cells_[r][c] += other.cells_[r][c];
    }
  }
  return *this;
}

std::string ImpactTable::Format(const std::string& title) const {
  const Impact kOrder[3] = {Impact::kWorse, Impact::kInsignificant,
                            Impact::kBetter};
  int64_t total = Total();
  auto pct = [total](int64_t count) {
    if (total == 0) return std::string("  0.0%");
    return StrFormat("%5.1f%%",
                     100.0 * static_cast<double>(count) /
                         static_cast<double>(total));
  };

  std::string out;
  out += title + "\n";
  out += StrFormat("%-22s | %-14s %-14s %-14s | %s\n", "", "acc. worse",
                   "acc. insign.", "acc. better", "total");
  out += std::string(86, '-') + "\n";
  const char* row_labels[3] = {"fairness worse", "fairness insign.",
                               "fairness better"};
  for (size_t r = 0; r < 3; ++r) {
    Impact fr = kOrder[r];
    out += StrFormat("%-22s |", row_labels[r]);
    for (size_t c = 0; c < 3; ++c) {
      int64_t count = cell(fr, kOrder[c]);
      out += StrFormat(" %s (%3lld)  ", pct(count).c_str(),
                       static_cast<long long>(count));
    }
    out += StrFormat("| %s (%lld)\n", pct(RowTotal(fr)).c_str(),
                     static_cast<long long>(RowTotal(fr)));
  }
  out += std::string(86, '-') + "\n";
  out += StrFormat("%-22s |", "total");
  for (size_t c = 0; c < 3; ++c) {
    int64_t count = ColumnTotal(kOrder[c]);
    out += StrFormat(" %s (%3lld)  ", pct(count).c_str(),
                     static_cast<long long>(count));
  }
  out += StrFormat("| %lld\n", static_cast<long long>(total));
  return out;
}

}  // namespace fairclean
