#ifndef FAIRCLEAN_CORE_QUALITY_REPORT_H_
#define FAIRCLEAN_CORE_QUALITY_REPORT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datasets/spec.h"

namespace fairclean {

/// Per-column quality statistics.
struct ColumnQuality {
  std::string name;
  bool numeric = false;
  size_t missing_count = 0;
  double missing_fraction = 0.0;
  // Numeric columns only.
  double mean = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  // Categorical columns only.
  size_t cardinality = 0;
};

/// Per-detector flag statistics.
struct DetectorQuality {
  std::string detector;
  size_t flagged_rows = 0;
  double flagged_fraction = 0.0;
};

/// Per-group base-rate statistics.
struct GroupQuality {
  std::string group_key;
  size_t privileged_count = 0;
  size_t disadvantaged_count = 0;
  double privileged_positive_rate = 0.0;
  double disadvantaged_positive_rate = 0.0;
};

/// A data-quality profile of one dataset: schema-level statistics, the
/// fraction of tuples each of the paper's five detection strategies flags,
/// and label base rates per protected group. This is the library face of
/// the Section III analysis (the RQ1 disparity tests live in
/// core/disparity.h).
struct QualityReport {
  std::string dataset;
  size_t num_rows = 0;
  std::vector<ColumnQuality> columns;
  std::vector<DetectorQuality> detectors;
  std::vector<GroupQuality> groups;

  /// Aligned ASCII rendering.
  std::string Format() const;
};

/// Profiles `dataset`: column statistics, flag rates of every detection
/// strategy applicable to the dataset's error types, and per-group
/// positive rates. `rng` drives randomized detectors.
Result<QualityReport> ComputeQualityReport(const GeneratedDataset& dataset,
                                           Rng* rng);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_QUALITY_REPORT_H_
