#ifndef FAIRCLEAN_CORE_IMPACT_H_
#define FAIRCLEAN_CORE_IMPACT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fairclean {

/// Direction of the effect of auto-cleaning on a score, relative to the
/// dirty baseline, as classified by a paired t-test.
enum class Impact { kWorse, kInsignificant, kBetter };

const char* ImpactName(Impact impact);

/// Classifies the impact of cleaning by comparing per-repeat scores of the
/// repaired configuration against the dirty baseline with a two-sided
/// paired t-test at level `alpha` (callers pass a Bonferroni-adjusted
/// alpha, as the paper does). `higher_is_better` is true for accuracy and
/// false for unfairness (|fairness gap|).
Result<Impact> ClassifyImpact(const std::vector<double>& dirty_scores,
                              const std::vector<double>& repaired_scores,
                              double alpha, bool higher_is_better);

/// The paper's 3x3 impact table: fairness impact (rows: worse /
/// insignificant / better) crossed with accuracy impact (columns), with
/// counts of configurations per cell.
class ImpactTable {
 public:
  ImpactTable() = default;

  void Add(Impact fairness, Impact accuracy);

  int64_t cell(Impact fairness, Impact accuracy) const;
  int64_t RowTotal(Impact fairness) const;
  int64_t ColumnTotal(Impact accuracy) const;
  int64_t Total() const;

  /// Percentage of the grand total in a cell (0 when empty).
  double CellPercent(Impact fairness, Impact accuracy) const;

  /// Renders the table in the paper's layout (percentages with counts,
  /// row/column totals), titled e.g. "Impact of auto-cleaning missing
  /// values for single-attribute groups, PP".
  std::string Format(const std::string& title) const;

  /// Accumulates another table cell-wise.
  ImpactTable& operator+=(const ImpactTable& other);

 private:
  static size_t Index(Impact impact);

  int64_t cells_[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
};

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_IMPACT_H_
