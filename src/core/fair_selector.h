#ifndef FAIRCLEAN_CORE_FAIR_SELECTOR_H_
#define FAIRCLEAN_CORE_FAIR_SELECTOR_H_

#include <string>
#include <vector>

#include "core/runner.h"

namespace fairclean {

/// A ranked cleaning recommendation produced by SelectFairCleaning.
struct CleaningRecommendation {
  std::string method;
  ImpactOutcome impact;
  /// True if the method satisfies the selection constraint (accuracy not
  /// significantly worse and fairness not significantly worse).
  bool admissible = false;
};

/// Policy for choosing among admissible cleaning methods.
enum class SelectionObjective {
  /// Largest reduction of |fairness gap|.
  kMaxFairnessGain,
  /// Largest accuracy gain among methods that do not worsen fairness.
  kMaxAccuracyGain,
};

/// Fairness-aware cleaning selection — a working prototype of the paper's
/// Section VII vision ("a principled methodology for selecting an
/// appropriate cleaning procedure"): rank the cleaning methods evaluated in
/// `result` for one (group, fairness metric) target, admit only methods
/// whose accuracy AND fairness impacts are not significantly worse than the
/// dirty baseline, and order them by the chosen objective. Returns all
/// methods (admissible first); the first admissible entry is the
/// recommendation, and an empty admissible set reproduces the paper's
/// "3 of 40 cases have no safe cleaning technique" situation.
Result<std::vector<CleaningRecommendation>> SelectFairCleaning(
    const CleaningExperimentResult& result, const std::string& group_key,
    FairnessMetric metric, double alpha,
    SelectionObjective objective = SelectionObjective::kMaxFairnessGain);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_FAIR_SELECTOR_H_
