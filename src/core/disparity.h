#ifndef FAIRCLEAN_CORE_DISPARITY_H_
#define FAIRCLEAN_CORE_DISPARITY_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datasets/spec.h"
#include "stats/tests.h"

namespace fairclean {

/// One row of the RQ1 analysis (Figures 1 and 2 of the paper): the
/// proportions of tuples an error-detection strategy flags in the
/// privileged and disadvantaged group, with a G^2 significance test of the
/// disparity.
struct DisparityRow {
  std::string dataset;
  std::string detector;
  std::string group_key;
  bool intersectional = false;
  size_t privileged_total = 0;
  size_t disadvantaged_total = 0;
  size_t privileged_flagged = 0;
  size_t disadvantaged_flagged = 0;
  TestResult g2;
  bool significant = false;

  double PrivilegedFraction() const;
  double DisadvantagedFraction() const;
};

/// Options for the disparity analysis.
struct DisparityOptions {
  /// Significance level of the G^2 test (paper: 0.05).
  double alpha = 0.05;
  /// Restrict to these detector names; empty = all five strategies that
  /// apply to the dataset's error types.
  std::vector<std::string> detectors;
};

/// Runs every applicable error-detection strategy on the dataset and
/// compares flag rates between groups. With `intersectional` false the
/// analysis covers each sensitive attribute separately (Fig. 1); with true
/// it covers the intersectional group pair (Fig. 2, skipped for datasets
/// without an intersectional definition).
Result<std::vector<DisparityRow>> AnalyzeDisparities(
    const GeneratedDataset& dataset, bool intersectional,
    const DisparityOptions& options, Rng* rng);

/// Formats disparity rows as an aligned ASCII table (one Fig. 1/2 panel).
std::string FormatDisparityTable(const std::vector<DisparityRow>& rows);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_DISPARITY_H_
