#ifndef FAIRCLEAN_CORE_CLEANING_H_
#define FAIRCLEAN_CORE_CLEANING_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/dataframe.h"
#include "datasets/spec.h"
#include "repair/imputer.h"

namespace fairclean {

/// One automated cleaning configuration: an error type, the detection
/// strategy and the repair method — the unit the paper's tables aggregate
/// over (e.g. missing values repaired with mean/dummy imputation, or
/// IQR-detected outliers repaired with the median).
struct CleaningMethod {
  /// "missing_values", "outliers" or "mislabels".
  std::string error_type;
  /// Detection strategy ("missing_values", "outliers-sd", "outliers-iqr",
  /// "outliers-if", "mislabels").
  std::string detector;
  /// Numeric repair/imputation statistic (missing values and outliers).
  NumericImpute numeric_impute = NumericImpute::kMean;
  /// Categorical imputation (missing values only).
  CategoricalImpute categorical_impute = CategoricalImpute::kDummy;

  /// CleanML-style composite name, e.g. "impute_mean_dummy" for missing
  /// values, "outliers-iqr__impute_median" for outliers, "flip_mislabels"
  /// for label errors.
  std::string Name() const;
};

/// Enumerates the paper's cleaning configurations for an error type:
/// missing values -> {mean, median, mode} x {mode, dummy} = 6;
/// outliers -> {sd, iqr, if} x {mean, median, mode} = 9;
/// mislabels -> {flip} = 1.
Result<std::vector<CleaningMethod>> CleaningMethodsFor(
    const std::string& error_type);

/// All error types in the paper's order.
std::vector<std::string> AllErrorTypes();

/// A train/test pair flowing through the Fig. 3 protocol.
struct PreparedData {
  DataFrame train;
  DataFrame test;
};

/// Step 2a of the protocol: the "dirty" version for an error type.
///   missing_values: drop rows with missing feature values from the train
///     split; impute the test split with mean/dummy (one cannot drop tuples
///     at prediction time), fitted on the retained train rows.
///   outliers / mislabels: keep the data as-is (missing values, if any,
///     have been removed beforehand by PrepareBase).
Result<PreparedData> MakeDirtyVersion(const PreparedData& base,
                                      const DatasetSpec& spec,
                                      const std::string& error_type);

/// Step 2b: the repaired version under `method`. Detection runs per split;
/// repair statistics (imputation/replacement values) are fitted on the
/// train split and applied to both splits. Labels are never flipped on the
/// test split.
Result<PreparedData> MakeRepairedVersion(const PreparedData& base,
                                         const DatasetSpec& spec,
                                         const CleaningMethod& method,
                                         Rng* rng);

/// Shared preprocessing before dirty/repaired versions are derived: for
/// outlier and mislabel experiments the paper removes tuples with missing
/// values from the data beforehand; for missing-value experiments the raw
/// splits pass through unchanged.
Result<PreparedData> PrepareBase(const DataFrame& train_raw,
                                 const DataFrame& test_raw,
                                 const DatasetSpec& spec,
                                 const std::string& error_type);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_CLEANING_H_
