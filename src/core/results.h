#ifndef FAIRCLEAN_CORE_RESULTS_H_
#define FAIRCLEAN_CORE_RESULTS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairclean {

/// Flat, deterministic key -> value store for experiment outputs, mirroring
/// the paper's JSON result records (e.g.
/// "German/missing_values/impute_mean_dummy/logreg/6130" ->
/// {"impute_mean_dummy__sex_priv__age_priv__fp": 13, ...}).
///
/// Keys are kept in sorted order everywhere (storage and serialization):
/// the paper reports a severe reproducibility bug in CleanML caused by a
/// randomly reshuffled key-value mapping between cleaning-technique names
/// and metric values, so this store makes the mapping explicit and stable
/// by construction.
class ResultStore {
 public:
  /// Sets (or overwrites) a metric value.
  void Put(const std::string& key, double value);

  /// True if the key exists.
  bool Contains(const std::string& key) const;

  /// The stored value.
  Result<double> Get(const std::string& key) const;

  size_t size() const { return values_.size(); }

  /// All keys with the given prefix, in sorted order.
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  /// Serializes to a flat JSON object with keys in sorted order.
  std::string ToJson() const;

  /// Parses a store previously produced by ToJson.
  static Result<ResultStore> FromJson(const std::string& json);

  /// Persists to / restores from a file — the stop-and-resume facility the
  /// paper's framework provides so completed experiments are not repeated.
  /// Saves are crash-safe (temp file + fsync + rename) and carry a CRC-32
  /// footer; LoadFromFile verifies the footer when present (truncated or
  /// bit-flipped files fail with InvalidArgument rather than being reused)
  /// and still accepts legacy footer-less files.
  Status SaveToFile(const std::string& path) const;
  static Result<ResultStore> LoadFromFile(const std::string& path);

  /// LoadFromFile's parsing half on bytes already in memory (the blob
  /// store backends hand the driver raw bytes): verifies the footer when
  /// present, accepts legacy footer-less content. `origin` prefixes error
  /// messages the way LoadFromFile uses the path.
  static Result<ResultStore> LoadFromString(const std::string& content,
                                            const std::string& origin);

  /// Merges another store into this one (other wins on key conflicts).
  void MergeFrom(const ResultStore& other);

 private:
  std::map<std::string, double> values_;
};

/// Builds the flat metric key used in result records, joining non-empty
/// parts with "__": e.g. MetricKey({"impute_mean_dummy", "sex_priv", "fp"})
/// -> "impute_mean_dummy__sex_priv__fp".
std::string MetricKey(const std::vector<std::string>& parts);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_RESULTS_H_
