#include "core/cleaning.h"

#include "common/strings.h"
#include "detect/detector.h"
#include "repair/label_repair.h"
#include "repair/outlier_repair.h"

namespace fairclean {

namespace {

// Rows of `frame` with no missing value in any feature column.
std::vector<bool> CompleteFeatureRows(const DataFrame& frame,
                                      const std::vector<std::string>& features) {
  std::vector<bool> keep(frame.num_rows(), true);
  for (const std::string& name : features) {
    const Column& column = frame.column(name);
    for (size_t row = 0; row < column.size(); ++row) {
      if (column.IsMissing(row)) keep[row] = false;
    }
  }
  return keep;
}

}  // namespace

std::string CleaningMethod::Name() const {
  if (error_type == "missing_values") {
    return StrFormat("impute_%s_%s", NumericImputeName(numeric_impute),
                     CategoricalImputeName(categorical_impute));
  }
  if (error_type == "outliers") {
    return StrFormat("%s__impute_%s", detector.c_str(),
                     NumericImputeName(numeric_impute));
  }
  return "flip_mislabels";
}

Result<std::vector<CleaningMethod>> CleaningMethodsFor(
    const std::string& error_type) {
  std::vector<CleaningMethod> methods;
  if (error_type == "missing_values") {
    for (NumericImpute numeric :
         {NumericImpute::kMean, NumericImpute::kMedian, NumericImpute::kMode}) {
      for (CategoricalImpute categorical :
           {CategoricalImpute::kMode, CategoricalImpute::kDummy}) {
        CleaningMethod method;
        method.error_type = error_type;
        method.detector = "missing_values";
        method.numeric_impute = numeric;
        method.categorical_impute = categorical;
        methods.push_back(method);
      }
    }
    return methods;
  }
  if (error_type == "outliers") {
    for (const char* detector : {"outliers-sd", "outliers-iqr", "outliers-if"}) {
      for (NumericImpute numeric : {NumericImpute::kMean,
                                    NumericImpute::kMedian,
                                    NumericImpute::kMode}) {
        CleaningMethod method;
        method.error_type = error_type;
        method.detector = detector;
        method.numeric_impute = numeric;
        methods.push_back(method);
      }
    }
    return methods;
  }
  if (error_type == "mislabels") {
    CleaningMethod method;
    method.error_type = error_type;
    method.detector = "mislabels";
    methods.push_back(method);
    return methods;
  }
  return Status::NotFound("unknown error type: " + error_type);
}

std::vector<std::string> AllErrorTypes() {
  return {"missing_values", "outliers", "mislabels"};
}

Result<PreparedData> PrepareBase(const DataFrame& train_raw,
                                 const DataFrame& test_raw,
                                 const DatasetSpec& spec,
                                 const std::string& error_type) {
  PreparedData base;
  if (error_type == "missing_values") {
    base.train = train_raw;
    base.test = test_raw;
    return base;
  }
  // Outlier/mislabel experiments operate on complete tuples.
  std::vector<std::string> features = spec.FeatureColumns(train_raw);
  base.train = train_raw.FilterRows(CompleteFeatureRows(train_raw, features));
  base.test = test_raw.FilterRows(CompleteFeatureRows(test_raw, features));
  if (base.train.num_rows() == 0 || base.test.num_rows() == 0) {
    return Status::InvalidArgument("no complete tuples left");
  }
  return base;
}

Result<PreparedData> MakeDirtyVersion(const PreparedData& base,
                                      const DatasetSpec& spec,
                                      const std::string& error_type) {
  PreparedData dirty;
  if (error_type != "missing_values") {
    // Outliers / mislabels: the dirty version keeps the data as-is.
    dirty = base;
    return dirty;
  }
  std::vector<std::string> features = spec.FeatureColumns(base.train);
  dirty.train =
      base.train.FilterRows(CompleteFeatureRows(base.train, features));
  if (dirty.train.num_rows() == 0) {
    return Status::InvalidArgument("all training tuples have missing values");
  }
  // Test tuples cannot be dropped at prediction time: impute mean/dummy
  // with statistics from the (complete) dirty training rows.
  dirty.test = base.test;
  MissingValueImputer imputer(NumericImpute::kMean, CategoricalImpute::kDummy);
  FC_RETURN_IF_ERROR(imputer.Fit(dirty.train, features));
  FC_RETURN_IF_ERROR(imputer.Apply(&dirty.test));
  return dirty;
}

Result<PreparedData> MakeRepairedVersion(const PreparedData& base,
                                         const DatasetSpec& spec,
                                         const CleaningMethod& method,
                                         Rng* rng) {
  std::vector<std::string> features = spec.FeatureColumns(base.train);
  PreparedData repaired = base;

  if (method.error_type == "missing_values") {
    MissingValueImputer imputer(method.numeric_impute,
                                method.categorical_impute);
    FC_RETURN_IF_ERROR(imputer.Fit(repaired.train, features));
    FC_RETURN_IF_ERROR(imputer.Apply(&repaired.train));
    FC_RETURN_IF_ERROR(imputer.Apply(&repaired.test));
    return repaired;
  }

  FC_ASSIGN_OR_RETURN(std::unique_ptr<ErrorDetector> detector,
                      DetectorByName(method.detector));
  DetectionContext context;
  context.inspect_columns = features;
  context.label_column = spec.label;

  if (method.error_type == "outliers") {
    Rng train_rng = rng->Fork(0x0071);
    FC_ASSIGN_OR_RETURN(ErrorMask train_mask,
                        detector->Detect(repaired.train, context, &train_rng));
    Rng test_rng = rng->Fork(0x0072);
    FC_ASSIGN_OR_RETURN(ErrorMask test_mask,
                        detector->Detect(repaired.test, context, &test_rng));
    OutlierRepairer repairer(method.numeric_impute);
    FC_RETURN_IF_ERROR(repairer.Fit(repaired.train, train_mask, features));
    FC_RETURN_IF_ERROR(repairer.Apply(&repaired.train, train_mask));
    FC_RETURN_IF_ERROR(repairer.Apply(&repaired.test, test_mask));
    return repaired;
  }

  if (method.error_type == "mislabels") {
    Rng train_rng = rng->Fork(0x1a8e1);
    FC_ASSIGN_OR_RETURN(ErrorMask train_mask,
                        detector->Detect(repaired.train, context, &train_rng));
    // Labels are never flipped on the test set (paper Section V).
    FC_ASSIGN_OR_RETURN(
        size_t flipped,
        FlipFlaggedLabels(&repaired.train, train_mask, spec.label));
    (void)flipped;
    return repaired;
  }

  return Status::NotFound("unknown error type: " + method.error_type);
}

}  // namespace fairclean
