#ifndef FAIRCLEAN_CORE_FAIR_TUNING_H_
#define FAIRCLEAN_CORE_FAIR_TUNING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "fairness/fairness_metrics.h"
#include "fairness/group.h"
#include "ml/tuning.h"

namespace fairclean {

/// Options for fairness-constrained hyperparameter selection.
struct FairTuneOptions {
  /// The fairness metric whose validation gap is constrained.
  FairnessMetric metric = FairnessMetric::kEqualOpportunity;
  /// Maximum allowed mean |validation fairness gap|. Candidates above the
  /// budget are excluded unless no candidate fits (then the fairest wins).
  double max_unfairness = 0.1;
  /// Cross-validation folds.
  size_t num_folds = 3;
};

/// Result of a fairness-constrained search.
struct FairTuneOutcome {
  double best_param = 0.0;
  double best_cv_accuracy = 0.0;
  /// Mean |validation gap| of the selected hyperparameter.
  double best_cv_unfairness = 0.0;
  /// True if the selected candidate satisfies the unfairness budget.
  bool within_budget = false;
  std::unique_ptr<Classifier> model;  // trained on the full training set
};

/// Fairness-constrained grid search — a working version of the paper's
/// Section VII direction "extend existing [cross-validation] techniques and
/// implementations to adhere to fairness constraints during the selection
/// procedure".
///
/// For every hyperparameter candidate, k-fold CV measures both the mean
/// accuracy and the mean |signed fairness gap| of `options.metric` between
/// the groups given by `group_membership` (parallel to the rows of `x`;
/// entries: +1 privileged, -1 disadvantaged, 0 excluded). The selected
/// candidate is the most accurate one whose mean gap fits the unfairness
/// budget; if none fits, the candidate with the smallest gap is returned
/// with `within_budget = false`. A fresh model is then trained on the full
/// training set.
Result<FairTuneOutcome> FairTuneAndFit(const TunedModelFamily& family,
                                       const Matrix& x,
                                       const std::vector<int>& y,
                                       const std::vector<int>& group_membership,
                                       const FairTuneOptions& options,
                                       Rng* rng);

/// Helper: converts a GroupAssignment to the +1/-1/0 membership encoding
/// used by FairTuneAndFit.
std::vector<int> MembershipFromAssignment(const GroupAssignment& assignment);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_FAIR_TUNING_H_
