#include "core/runner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "data/split.h"
#include "ml/encoder.h"
#include "obs/trace.h"
#include "stats/descriptive.h"
#include "stats/tests.h"

namespace fairclean {

namespace {

// Stable 64-bit FNV-1a hash; std::hash is not guaranteed stable across
// implementations, and repeat seeds must be reproducible.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

constexpr FairnessMetric kAllMetrics[] = {
    FairnessMetric::kPredictiveParity,
    FairnessMetric::kEqualOpportunity,
    FairnessMetric::kDemographicParity,
    FairnessMetric::kFalsePositiveRateParity,
    FairnessMetric::kAccuracyParity,
};

// One trained-and-scored model: overall metrics plus per-group confusions.
struct EvalOutcome {
  double accuracy = 0.0;
  double f1 = 0.0;
  double best_param = 0.0;
  std::map<std::string, GroupConfusion> groups;
};

Result<EvalOutcome> TrainAndEvaluate(const PreparedData& data,
                                     const DatasetSpec& spec,
                                     const std::vector<GroupDefinition>& groups,
                                     const TunedModelFamily& family,
                                     size_t cv_folds, Rng* rng,
                                     ExecMode exec_mode) {
  obs::TraceSpan span("core", [&] {
    return "TrainAndEvaluate " + spec.name + " " + family.name;
  });
  std::vector<std::string> features = spec.FeatureColumns(data.train);
  FeatureEncoder encoder;
  FC_RETURN_IF_ERROR(encoder.Fit(data.train, features));
  FC_ASSIGN_OR_RETURN(Matrix train_x, encoder.Transform(data.train));
  FC_ASSIGN_OR_RETURN(Matrix test_x, encoder.Transform(data.test));
  FC_ASSIGN_OR_RETURN(std::vector<int> train_y,
                      ExtractBinaryLabels(data.train, spec.label));
  FC_ASSIGN_OR_RETURN(std::vector<int> test_y,
                      ExtractBinaryLabels(data.test, spec.label));

  Rng tune_rng = rng->Fork(0x70e0);
  FC_ASSIGN_OR_RETURN(TuneOutcome tuned,
                      TuneAndFit(family, train_x, train_y, cv_folds,
                                 &tune_rng, exec_mode));
  std::vector<int> predictions = tuned.model->Predict(test_x);

  EvalOutcome outcome;
  outcome.accuracy = AccuracyScore(test_y, predictions);
  outcome.f1 = F1Score(test_y, predictions);
  outcome.best_param = tuned.best_param;
  for (const GroupDefinition& group : groups) {
    GroupAssignment assignment;
    if (group.intersectional) {
      FC_ASSIGN_OR_RETURN(
          assignment, IntersectionalGroups(data.test, group.first,
                                           group.second));
    } else {
      FC_ASSIGN_OR_RETURN(assignment,
                          SingleAttributeGroups(data.test, group.first));
    }
    FC_ASSIGN_OR_RETURN(GroupConfusion confusion,
                        ComputeGroupConfusion(test_y, predictions,
                                              assignment));
    outcome.groups.emplace(group.key, confusion);
  }
  return outcome;
}

void AppendScores(const EvalOutcome& outcome,
                  const std::vector<GroupDefinition>& groups,
                  ScoreSeries* series) {
  series->accuracy.push_back(outcome.accuracy);
  series->f1.push_back(outcome.f1);
  for (const GroupDefinition& group : groups) {
    const GroupConfusion& confusion = outcome.groups.at(group.key);
    for (FairnessMetric metric : kAllMetrics) {
      series->unfairness[UnfairnessKey(group.key, metric)].push_back(
          FairnessGap(metric, confusion));
    }
  }
}

void RecordOutcome(const std::string& prefix, const EvalOutcome& outcome,
                   const std::vector<GroupDefinition>& groups,
                   ResultStore* records) {
  records->Put(MetricKey({prefix, "test_acc"}), outcome.accuracy);
  records->Put(MetricKey({prefix, "test_f1"}), outcome.f1);
  records->Put(MetricKey({prefix, "best_param"}), outcome.best_param);
  for (const GroupDefinition& group : groups) {
    const GroupConfusion& confusion = outcome.groups.at(group.key);
    const struct {
      const char* suffix;
      const ConfusionMatrix& cm;
    } sides[2] = {{"priv", confusion.privileged},
                  {"dis", confusion.disadvantaged}};
    for (const auto& side : sides) {
      std::string base = group.key + "_" + side.suffix;
      records->Put(MetricKey({prefix, base, "tn"}),
                   static_cast<double>(side.cm.tn));
      records->Put(MetricKey({prefix, base, "fp"}),
                   static_cast<double>(side.cm.fp));
      records->Put(MetricKey({prefix, base, "fn"}),
                   static_cast<double>(side.cm.fn));
      records->Put(MetricKey({prefix, base, "tp"}),
                   static_cast<double>(side.cm.tp));
    }
  }
}

}  // namespace

StudyOptions StudyOptionsFromEnv() {
  StudyOptions options;
  options.sample_size = static_cast<size_t>(
      GetEnvInt64("FAIRCLEAN_SAMPLE",
                  static_cast<int64_t>(options.sample_size)));
  options.num_repeats = static_cast<size_t>(
      GetEnvInt64("FAIRCLEAN_REPEATS",
                  static_cast<int64_t>(options.num_repeats)));
  options.cv_folds = static_cast<size_t>(
      GetEnvInt64("FAIRCLEAN_FOLDS", static_cast<int64_t>(options.cv_folds)));
  options.seed = static_cast<uint64_t>(
      GetEnvInt64("FAIRCLEAN_SEED", static_cast<int64_t>(options.seed)));
  return options;
}

std::vector<GroupDefinition> GroupDefinitionsFor(const DatasetSpec& spec) {
  std::vector<GroupDefinition> groups;
  for (const SensitiveAttribute& attribute : spec.sensitive_attributes) {
    GroupDefinition group;
    group.key = attribute.name;
    group.intersectional = false;
    group.first = attribute.privileged;
    groups.push_back(std::move(group));
  }
  if (spec.intersectional && spec.sensitive_attributes.size() >= 2) {
    GroupDefinition group;
    group.key = spec.sensitive_attributes[0].name + "*" +
                spec.sensitive_attributes[1].name;
    group.intersectional = true;
    group.first = spec.sensitive_attributes[0].privileged;
    group.second = spec.sensitive_attributes[1].privileged;
    groups.push_back(std::move(group));
  }
  return groups;
}

std::string UnfairnessKey(const std::string& group_key,
                          FairnessMetric metric) {
  return group_key + "/" + FairnessMetricShortName(metric);
}

Result<CleaningExperimentResult> RunCleaningRepeatSlice(
    const GeneratedDataset& dataset, const std::string& error_type,
    const TunedModelFamily& family, const StudyOptions& options,
    size_t repeat, uint64_t seed_salt,
    const std::vector<GroupDefinition>* groups) {
  obs::TraceSpan span("core", [&] {
    return StrFormat("repeat %s/%s/%s r%zu", dataset.spec.name.c_str(),
                     error_type.c_str(), family.name.c_str(), repeat);
  });
  if (!dataset.spec.HasErrorType(error_type)) {
    return Status::InvalidArgument(
        StrFormat("dataset %s has no error type %s",
                  dataset.spec.name.c_str(), error_type.c_str()));
  }
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(error_type));

  CleaningExperimentResult result;
  result.dataset = dataset.spec.name;
  result.error_type = error_type;
  result.model = family.name;
  // The wave planner pre-materializes the group definitions once per
  // (dataset, seed) group; a standalone slice derives them here. Both are
  // pure functions of the spec, so the result is identical either way.
  result.groups =
      groups != nullptr ? *groups : GroupDefinitionsFor(dataset.spec);

  size_t total_rows = dataset.frame.num_rows();
  size_t sample_size = std::min(options.sample_size, total_rows);

  // Stable per-repeat seed: reruns of the same configuration reproduce
  // identical numbers, and different configurations are decorrelated.
  // Salt 0 must keep the historical formula so existing caches stay valid.
  uint64_t repeat_seed =
      options.seed ^ Fnv1a(StrFormat("%s/%s/%s/%zu",
                                     dataset.spec.name.c_str(),
                                     error_type.c_str(),
                                     family.name.c_str(), repeat));
  if (seed_salt != 0) {
    repeat_seed ^= Fnv1a(StrFormat("retry/%llu",
                                   static_cast<unsigned long long>(seed_salt)));
  }
  Rng rng(repeat_seed);

  std::vector<size_t> sample =
      rng.SampleWithoutReplacement(total_rows, sample_size);
  DataFrame sampled = dataset.frame.Take(sample);
  TrainTestIndices split =
      SplitTrainTest(sampled.num_rows(), options.test_fraction, &rng);
  DataFrame train_raw = sampled.Take(split.train);
  DataFrame test_raw = sampled.Take(split.test);

  FC_ASSIGN_OR_RETURN(
      PreparedData base,
      PrepareBase(train_raw, test_raw, dataset.spec, error_type));
  FC_ASSIGN_OR_RETURN(PreparedData dirty,
                      MakeDirtyVersion(base, dataset.spec, error_type));

  Rng dirty_rng = rng.Fork(0xd127);
  FC_ASSIGN_OR_RETURN(
      EvalOutcome dirty_outcome,
      TrainAndEvaluate(dirty, dataset.spec, result.groups, family,
                       options.cv_folds, &dirty_rng, options.exec_mode));
  // Fault-injection site at the numeric boundary: a fired "numeric" fault
  // turns the score into NaN, which the study driver must catch as a
  // degenerate repeat (retry/skip) before it poisons the t-tests.
  dirty_outcome.accuracy =
      FaultInjector::Global().CorruptScore("numeric", dirty_outcome.accuracy);
  AppendScores(dirty_outcome, result.groups, &result.dirty);
  RecordOutcome(
      StrFormat("%s/%s/dirty/%s/r%zu", dataset.spec.name.c_str(),
                error_type.c_str(), family.name.c_str(), repeat),
      dirty_outcome, result.groups, &result.records);

  for (const CleaningMethod& method : methods) {
    Rng method_rng = rng.Fork(Fnv1a(method.Name()));
    FC_ASSIGN_OR_RETURN(
        PreparedData repaired,
        MakeRepairedVersion(base, dataset.spec, method, &method_rng));
    Rng eval_rng = rng.Fork(Fnv1a(method.Name() + "/eval"));
    FC_ASSIGN_OR_RETURN(
        EvalOutcome repaired_outcome,
        TrainAndEvaluate(repaired, dataset.spec, result.groups, family,
                         options.cv_folds, &eval_rng, options.exec_mode));
    AppendScores(repaired_outcome, result.groups,
                 &result.repaired[method.Name()]);
    RecordOutcome(
        StrFormat("%s/%s/%s/%s/r%zu", dataset.spec.name.c_str(),
                  error_type.c_str(), method.Name().c_str(),
                  family.name.c_str(), repeat),
        repaired_outcome, result.groups, &result.records);
  }
  return result;
}

namespace {

void AppendSeries(const ScoreSeries& slice, ScoreSeries* target) {
  target->accuracy.insert(target->accuracy.end(), slice.accuracy.begin(),
                          slice.accuracy.end());
  target->f1.insert(target->f1.end(), slice.f1.begin(), slice.f1.end());
  for (const auto& [key, values] : slice.unfairness) {
    std::vector<double>& series = target->unfairness[key];
    series.insert(series.end(), values.begin(), values.end());
  }
}

}  // namespace

Status AppendRepeatSlice(const CleaningExperimentResult& slice,
                         CleaningExperimentResult* target) {
  if (target->dataset.empty() && target->repaired.empty() &&
      target->dirty.accuracy.empty()) {
    target->dataset = slice.dataset;
    target->error_type = slice.error_type;
    target->model = slice.model;
    target->groups = slice.groups;
  } else if (target->dataset != slice.dataset ||
             target->error_type != slice.error_type ||
             target->model != slice.model) {
    return Status::InvalidArgument(StrFormat(
        "slice %s/%s/%s does not match experiment %s/%s/%s",
        slice.dataset.c_str(), slice.error_type.c_str(), slice.model.c_str(),
        target->dataset.c_str(), target->error_type.c_str(),
        target->model.c_str()));
  }
  AppendSeries(slice.dirty, &target->dirty);
  for (const auto& [method, series] : slice.repaired) {
    AppendSeries(series, &target->repaired[method]);
  }
  target->records.MergeFrom(slice.records);
  return Status::OK();
}

Result<CleaningExperimentResult> RunCleaningExperiment(
    const GeneratedDataset& dataset, const std::string& error_type,
    const TunedModelFamily& family, const StudyOptions& options) {
  CleaningExperimentResult result;
  for (size_t repeat = 0; repeat < options.num_repeats; ++repeat) {
    FC_ASSIGN_OR_RETURN(
        CleaningExperimentResult slice,
        RunCleaningRepeatSlice(dataset, error_type, family, options, repeat));
    FC_RETURN_IF_ERROR(AppendRepeatSlice(slice, &result));
  }
  if (options.num_repeats == 0) {
    // Preserve metadata for the degenerate zero-repeat request.
    result.dataset = dataset.spec.name;
    result.error_type = error_type;
    result.model = family.name;
    result.groups = GroupDefinitionsFor(dataset.spec);
  }
  return result;
}

Result<ImpactOutcome> ComputeImpact(const ScoreSeries& dirty_series,
                                    const ScoreSeries& method_series,
                                    const std::string& group_key,
                                    FairnessMetric metric, double alpha) {
  std::string key = UnfairnessKey(group_key, metric);
  auto dirty_it = dirty_series.unfairness.find(key);
  auto method_it = method_series.unfairness.find(key);
  if (dirty_it == dirty_series.unfairness.end() ||
      method_it == method_series.unfairness.end()) {
    return Status::NotFound("no unfairness series for " + key);
  }

  ImpactOutcome outcome;
  // Fairness: paired t-test on the signed gaps (the paper's metric); if
  // the shift is significant, cleaning improved fairness exactly when the
  // mean gap moved closer to zero.
  FC_ASSIGN_OR_RETURN(TestResult fairness_test,
                      PairedTTest(method_it->second, dirty_it->second));
  FC_ASSIGN_OR_RETURN(double mean_dirty_unfair, Mean(dirty_it->second));
  FC_ASSIGN_OR_RETURN(double mean_method_unfair, Mean(method_it->second));
  if (!fairness_test.SignificantAt(alpha) ||
      std::abs(mean_method_unfair) == std::abs(mean_dirty_unfair)) {
    outcome.fairness = Impact::kInsignificant;
  } else {
    outcome.fairness = std::abs(mean_method_unfair) <
                               std::abs(mean_dirty_unfair)
                           ? Impact::kBetter
                           : Impact::kWorse;
  }
  FC_ASSIGN_OR_RETURN(outcome.accuracy,
                      ClassifyImpact(dirty_series.accuracy,
                                     method_series.accuracy, alpha,
                                     /*higher_is_better=*/true));
  outcome.unfairness_delta =
      std::abs(mean_method_unfair) - std::abs(mean_dirty_unfair);
  FC_ASSIGN_OR_RETURN(double mean_dirty_acc, Mean(dirty_series.accuracy));
  FC_ASSIGN_OR_RETURN(double mean_method_acc, Mean(method_series.accuracy));
  outcome.accuracy_delta = mean_method_acc - mean_dirty_acc;
  return outcome;
}

}  // namespace fairclean
