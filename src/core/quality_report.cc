#include "core/quality_report.h"

#include "common/strings.h"
#include "core/runner.h"
#include "detect/detector.h"
#include "ml/encoder.h"
#include "stats/descriptive.h"

namespace fairclean {

namespace {

std::vector<std::string> ApplicableDetectors(const DatasetSpec& spec) {
  std::vector<std::string> out;
  if (spec.HasErrorType("missing_values")) out.push_back("missing_values");
  if (spec.HasErrorType("outliers")) {
    out.push_back("outliers-sd");
    out.push_back("outliers-iqr");
    out.push_back("outliers-if");
  }
  if (spec.HasErrorType("mislabels")) out.push_back("mislabels");
  return out;
}

}  // namespace

Result<QualityReport> ComputeQualityReport(const GeneratedDataset& dataset,
                                           Rng* rng) {
  const DataFrame& frame = dataset.frame;
  const DatasetSpec& spec = dataset.spec;
  if (frame.num_rows() == 0) {
    return Status::InvalidArgument("empty dataset");
  }

  QualityReport report;
  report.dataset = spec.name;
  report.num_rows = frame.num_rows();

  double n = static_cast<double>(frame.num_rows());
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const Column& column = frame.column(c);
    ColumnQuality quality;
    quality.name = column.name();
    quality.numeric = column.is_numeric();
    quality.missing_count = column.MissingCount();
    quality.missing_fraction = static_cast<double>(quality.missing_count) / n;
    if (column.is_numeric()) {
      Result<double> mean = Mean(column.values());
      Result<double> median = Median(column.values());
      Result<double> p25 = Percentile(column.values(), 25.0);
      Result<double> p75 = Percentile(column.values(), 75.0);
      quality.mean = mean.ok() ? *mean : 0.0;
      quality.median = median.ok() ? *median : 0.0;
      quality.p25 = p25.ok() ? *p25 : 0.0;
      quality.p75 = p75.ok() ? *p75 : 0.0;
    } else {
      quality.cardinality = column.dictionary().size();
    }
    report.columns.push_back(std::move(quality));
  }

  DetectionContext context;
  context.inspect_columns = spec.FeatureColumns(frame);
  context.label_column = spec.label;
  for (const std::string& name : ApplicableDetectors(spec)) {
    FC_ASSIGN_OR_RETURN(std::unique_ptr<ErrorDetector> detector,
                        DetectorByName(name));
    Rng detector_rng = rng->Fork(std::hash<std::string>{}(name));
    FC_ASSIGN_OR_RETURN(ErrorMask mask,
                        detector->Detect(frame, context, &detector_rng));
    DetectorQuality quality;
    quality.detector = name;
    quality.flagged_rows = mask.FlaggedRowCount();
    quality.flagged_fraction = static_cast<double>(quality.flagged_rows) / n;
    report.detectors.push_back(std::move(quality));
  }

  FC_ASSIGN_OR_RETURN(std::vector<int> labels,
                      ExtractBinaryLabels(frame, spec.label));
  for (const GroupDefinition& group : GroupDefinitionsFor(spec)) {
    GroupAssignment assignment;
    if (group.intersectional) {
      FC_ASSIGN_OR_RETURN(assignment,
                          IntersectionalGroups(frame, group.first,
                                               group.second));
    } else {
      FC_ASSIGN_OR_RETURN(assignment,
                          SingleAttributeGroups(frame, group.first));
    }
    GroupQuality quality;
    quality.group_key = group.key;
    double priv_pos = 0.0;
    double dis_pos = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      if (assignment.privileged[i]) {
        ++quality.privileged_count;
        priv_pos += labels[i];
      } else if (assignment.disadvantaged[i]) {
        ++quality.disadvantaged_count;
        dis_pos += labels[i];
      }
    }
    quality.privileged_positive_rate =
        quality.privileged_count
            ? priv_pos / static_cast<double>(quality.privileged_count)
            : 0.0;
    quality.disadvantaged_positive_rate =
        quality.disadvantaged_count
            ? dis_pos / static_cast<double>(quality.disadvantaged_count)
            : 0.0;
    report.groups.push_back(std::move(quality));
  }
  return report;
}

std::string QualityReport::Format() const {
  std::string out = StrFormat("== %s: %zu rows ==\n", dataset.c_str(),
                              num_rows);
  out += "columns:\n";
  for (const ColumnQuality& column : columns) {
    if (column.numeric) {
      out += StrFormat(
          "  %-22s numeric      missing %5.2f%%  mean %10.2f  p25/50/75 "
          "%.2f/%.2f/%.2f\n",
          column.name.c_str(), 100.0 * column.missing_fraction, column.mean,
          column.p25, column.median, column.p75);
    } else {
      out += StrFormat(
          "  %-22s categorical  missing %5.2f%%  %zu categories\n",
          column.name.c_str(), 100.0 * column.missing_fraction,
          column.cardinality);
    }
  }
  out += "detectors:\n";
  for (const DetectorQuality& detector : detectors) {
    out += StrFormat("  %-15s flags %5.2f%% of tuples (%zu rows)\n",
                     detector.detector.c_str(),
                     100.0 * detector.flagged_fraction, detector.flagged_rows);
  }
  out += "groups:\n";
  for (const GroupQuality& group : groups) {
    out += StrFormat(
        "  %-12s priv n=%-7zu pos %5.1f%% | dis n=%-7zu pos %5.1f%%\n",
        group.group_key.c_str(), group.privileged_count,
        100.0 * group.privileged_positive_rate, group.disadvantaged_count,
        100.0 * group.disadvantaged_positive_rate);
  }
  return out;
}

}  // namespace fairclean
