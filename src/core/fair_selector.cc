#include "core/fair_selector.h"

#include <algorithm>

namespace fairclean {

Result<std::vector<CleaningRecommendation>> SelectFairCleaning(
    const CleaningExperimentResult& result, const std::string& group_key,
    FairnessMetric metric, double alpha, SelectionObjective objective) {
  std::vector<CleaningRecommendation> recommendations;
  for (const auto& [method, series] : result.repaired) {
    CleaningRecommendation rec;
    rec.method = method;
    FC_ASSIGN_OR_RETURN(
        rec.impact,
        ComputeImpact(result.dirty, series, group_key, metric, alpha));
    rec.admissible = rec.impact.fairness != Impact::kWorse &&
                     rec.impact.accuracy != Impact::kWorse;
    recommendations.push_back(std::move(rec));
  }

  std::stable_sort(
      recommendations.begin(), recommendations.end(),
      [objective](const CleaningRecommendation& a,
                  const CleaningRecommendation& b) {
        if (a.admissible != b.admissible) return a.admissible;
        if (objective == SelectionObjective::kMaxFairnessGain) {
          // More negative unfairness delta = larger fairness gain.
          if (a.impact.unfairness_delta != b.impact.unfairness_delta) {
            return a.impact.unfairness_delta < b.impact.unfairness_delta;
          }
          return a.impact.accuracy_delta > b.impact.accuracy_delta;
        }
        if (a.impact.accuracy_delta != b.impact.accuracy_delta) {
          return a.impact.accuracy_delta > b.impact.accuracy_delta;
        }
        return a.impact.unfairness_delta < b.impact.unfairness_delta;
      });
  return recommendations;
}

}  // namespace fairclean
