#ifndef FAIRCLEAN_CORE_RUNNER_H_
#define FAIRCLEAN_CORE_RUNNER_H_

#include <map>
#include <string>
#include <vector>

#include "common/exec_mode.h"
#include "core/cleaning.h"
#include "core/impact.h"
#include "core/results.h"
#include "datasets/spec.h"
#include "fairness/fairness_metrics.h"
#include "ml/tuning.h"

namespace fairclean {

/// Scale knobs of the empirical study. The paper samples 15,000 records and
/// evaluates 100 models per configuration; the defaults here are scaled so
/// the full table suite regenerates in minutes (see DESIGN.md), and every
/// knob can be raised via the FAIRCLEAN_* environment variables (see
/// StudyOptionsFromEnv).
struct StudyOptions {
  /// Records sampled from the dataset per repeat.
  size_t sample_size = 2000;
  /// Fraction of the sample held out as the test set.
  double test_fraction = 0.25;
  /// Number of repeats (fresh sample/split/seed per repeat); the paired
  /// t-tests compare score vectors of this length.
  size_t num_repeats = 12;
  /// Folds for hyperparameter-search cross-validation.
  size_t cv_folds = 3;
  /// Global seed; every randomized decision derives from it.
  uint64_t seed = 42;
  /// Significance level before Bonferroni adjustment.
  double alpha = 0.05;
  /// Execution mode (FAIRCLEAN_EXEC_MODE): how much work the tuning and
  /// predict kernels share. Every mode produces byte-identical results;
  /// the knob exists so each sharing layer is independently measurable
  /// (DESIGN.md §15).
  ExecMode exec_mode = ExecMode::kFused;
};

/// Reads StudyOptions from the environment (FAIRCLEAN_SAMPLE,
/// FAIRCLEAN_REPEATS, FAIRCLEAN_FOLDS, FAIRCLEAN_SEED), falling back to the
/// defaults above.
StudyOptions StudyOptionsFromEnv();

/// A group definition the runner evaluates: either one sensitive attribute
/// ("sex") or the intersectional combination of the first two
/// ("sex*race"), per the paper's setup.
struct GroupDefinition {
  std::string key;
  bool intersectional = false;
  GroupPredicate first;
  GroupPredicate second;  // used when intersectional
};

/// The group definitions derived from a dataset spec: one per sensitive
/// attribute plus, when the spec is marked intersectional, the combination
/// of the first two attributes.
std::vector<GroupDefinition> GroupDefinitionsFor(const DatasetSpec& spec);

/// Per-repeat scores of one (data version, model) evaluation series.
struct ScoreSeries {
  /// Overall test accuracy per repeat.
  std::vector<double> accuracy;
  /// Test F1 per repeat.
  std::vector<double> f1;
  /// Signed fairness gap (privileged minus disadvantaged, the paper's
  /// metric definition) per repeat, keyed by
  /// "<group_key>/<metric short name>" (e.g. "sex/PP", "sex*race/EO").
  /// Zero means the metric is satisfied; the sign says which group is
  /// favored.
  std::map<std::string, std::vector<double>> unfairness;
};

/// Key into `ScoreSeries::unfairness`.
std::string UnfairnessKey(const std::string& group_key, FairnessMetric metric);

/// All scores of one (dataset, error type, model family) experiment: the
/// shared dirty baseline plus one series per cleaning method, and the flat
/// CleanML-style result records (accuracy/F1 and group-wise confusion
/// matrices per method and repeat).
struct CleaningExperimentResult {
  std::string dataset;
  std::string error_type;
  std::string model;
  std::vector<GroupDefinition> groups;
  ScoreSeries dirty;
  std::map<std::string, ScoreSeries> repaired;  // keyed by method name
  ResultStore records;
};

/// Runs the Fig. 3 protocol for every cleaning method of `error_type` on
/// `dataset` with the given model family: per repeat, sample + split, build
/// the dirty version and one repaired version per method, tune + train a
/// classifier on each, and score accuracy and group-wise confusion
/// matrices on the corresponding test sets. Deterministic given
/// options.seed.
Result<CleaningExperimentResult> RunCleaningExperiment(
    const GeneratedDataset& dataset, const std::string& error_type,
    const TunedModelFamily& family, const StudyOptions& options);

/// Runs exactly one repeat (slot `repeat`) of the protocol and returns it
/// as a result whose score series all have length 1 (records keyed
/// "r<repeat>" as usual). This is the checkpointable unit of work the
/// fault-tolerant study driver journals between: an interrupted experiment
/// resumes at the repeat boundary instead of restarting.
///
/// `seed_salt` 0 is the canonical attempt and reproduces the exact numbers
/// RunCleaningExperiment computes for that slot; a non-zero salt derives a
/// fresh but deterministic seed, used to retry repeats whose data draw was
/// degenerate (e.g. a single-class training fold).
///
/// `groups` optionally supplies the dataset's group definitions
/// pre-materialized by the wave planner; null derives them from the spec
/// per slice. GroupDefinitionsFor is deterministic in the spec, so both
/// paths yield identical results.
Result<CleaningExperimentResult> RunCleaningRepeatSlice(
    const GeneratedDataset& dataset, const std::string& error_type,
    const TunedModelFamily& family, const StudyOptions& options,
    size_t repeat, uint64_t seed_salt = 0,
    const std::vector<GroupDefinition>* groups = nullptr);

/// Appends a one-repeat slice onto `target` (series push_back + record
/// merge). The first slice initializes the target's metadata; later slices
/// must agree on dataset/error type/model and method set.
Status AppendRepeatSlice(const CleaningExperimentResult& slice,
                         CleaningExperimentResult* target);

/// Impact of one cleaning method on accuracy and on one fairness metric for
/// one group definition, classified against the dirty baseline.
struct ImpactOutcome {
  Impact fairness = Impact::kInsignificant;
  Impact accuracy = Impact::kInsignificant;
  /// Mean change of |fairness gap| (negative = fairer).
  double unfairness_delta = 0.0;
  /// Mean change of accuracy (positive = more accurate).
  double accuracy_delta = 0.0;
};

/// Classifies the impact of `method_series` relative to `dirty_series` for
/// (group, metric) with paired t-tests at `alpha` (pass a
/// Bonferroni-adjusted level). The fairness test runs on the signed gap
/// series; when the shift is significant, the direction is decided by
/// whether the mean gap moved towards zero (fairer) or away from it.
Result<ImpactOutcome> ComputeImpact(const ScoreSeries& dirty_series,
                                    const ScoreSeries& method_series,
                                    const std::string& group_key,
                                    FairnessMetric metric, double alpha);

}  // namespace fairclean

#endif  // FAIRCLEAN_CORE_RUNNER_H_
