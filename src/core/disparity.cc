#include "core/disparity.h"

#include <algorithm>

#include "common/strings.h"
#include "core/runner.h"
#include "detect/detector.h"

namespace fairclean {

double DisparityRow::PrivilegedFraction() const {
  if (privileged_total == 0) return 0.0;
  return static_cast<double>(privileged_flagged) /
         static_cast<double>(privileged_total);
}

double DisparityRow::DisadvantagedFraction() const {
  if (disadvantaged_total == 0) return 0.0;
  return static_cast<double>(disadvantaged_flagged) /
         static_cast<double>(disadvantaged_total);
}

namespace {

// Detector names applicable to a dataset's declared error types.
std::vector<std::string> ApplicableDetectors(const DatasetSpec& spec) {
  std::vector<std::string> out;
  if (spec.HasErrorType("missing_values")) out.push_back("missing_values");
  if (spec.HasErrorType("outliers")) {
    out.push_back("outliers-sd");
    out.push_back("outliers-iqr");
    out.push_back("outliers-if");
  }
  if (spec.HasErrorType("mislabels")) out.push_back("mislabels");
  return out;
}

}  // namespace

Result<std::vector<DisparityRow>> AnalyzeDisparities(
    const GeneratedDataset& dataset, bool intersectional,
    const DisparityOptions& options, Rng* rng) {
  const DatasetSpec& spec = dataset.spec;
  std::vector<std::string> detectors =
      options.detectors.empty() ? ApplicableDetectors(spec)
                                : options.detectors;

  // Resolve the group assignments under analysis.
  std::vector<GroupDefinition> all_groups = GroupDefinitionsFor(spec);
  std::vector<std::pair<std::string, GroupAssignment>> assignments;
  for (const GroupDefinition& group : all_groups) {
    if (group.intersectional != intersectional) continue;
    GroupAssignment assignment;
    if (group.intersectional) {
      FC_ASSIGN_OR_RETURN(assignment,
                          IntersectionalGroups(dataset.frame, group.first,
                                               group.second));
    } else {
      FC_ASSIGN_OR_RETURN(assignment,
                          SingleAttributeGroups(dataset.frame, group.first));
    }
    assignments.emplace_back(group.key, std::move(assignment));
  }
  if (assignments.empty()) return std::vector<DisparityRow>{};

  DetectionContext context;
  context.inspect_columns = spec.FeatureColumns(dataset.frame);
  context.label_column = spec.label;

  std::vector<DisparityRow> rows;
  for (const std::string& name : detectors) {
    FC_ASSIGN_OR_RETURN(std::unique_ptr<ErrorDetector> detector,
                        DetectorByName(name));
    Rng detector_rng = rng->Fork(std::hash<std::string>{}(name));
    FC_ASSIGN_OR_RETURN(
        ErrorMask mask,
        detector->Detect(dataset.frame, context, &detector_rng));

    for (const auto& [group_key, assignment] : assignments) {
      DisparityRow row;
      row.dataset = spec.name;
      row.detector = name;
      row.group_key = group_key;
      row.intersectional = intersectional;
      for (size_t i = 0; i < dataset.frame.num_rows(); ++i) {
        bool flagged = mask.RowFlagged(i);
        if (assignment.privileged[i]) {
          ++row.privileged_total;
          if (flagged) ++row.privileged_flagged;
        } else if (assignment.disadvantaged[i]) {
          ++row.disadvantaged_total;
          if (flagged) ++row.disadvantaged_flagged;
        }
      }
      ContingencyTable2x2 table;
      table.a = static_cast<int64_t>(row.privileged_flagged);
      table.b = static_cast<int64_t>(row.privileged_total -
                                     row.privileged_flagged);
      table.c = static_cast<int64_t>(row.disadvantaged_flagged);
      table.d = static_cast<int64_t>(row.disadvantaged_total -
                                     row.disadvantaged_flagged);
      Result<TestResult> test = GTest2x2(table);
      if (test.ok()) {
        row.g2 = *test;
        row.significant = test->SignificantAt(options.alpha);
      } else {
        // Zero margin (e.g. detector flagged nothing): no disparity claim.
        row.g2 = TestResult{};
        row.significant = false;
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string FormatDisparityTable(const std::vector<DisparityRow>& rows) {
  std::string out;
  out += StrFormat("%-8s %-15s %-12s %10s %10s %9s %9s  %s\n", "dataset",
                   "detector", "group", "priv", "dis", "G2", "p", "signif");
  out += std::string(92, '-') + "\n";
  for (const DisparityRow& row : rows) {
    out += StrFormat(
        "%-8s %-15s %-12s %9.1f%% %9.1f%% %9.2f %9.4f  %s\n",
        row.dataset.c_str(), row.detector.c_str(), row.group_key.c_str(),
        100.0 * row.PrivilegedFraction(),
        100.0 * row.DisadvantagedFraction(), row.g2.statistic, row.g2.p_value,
        row.significant ? "yes" : "no");
  }
  return out;
}

}  // namespace fairclean
