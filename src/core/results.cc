#include "core/results.h"

#include <cmath>
#include <cstdlib>

#include "common/safe_io.h"
#include "common/strings.h"

namespace fairclean {

void ResultStore::Put(const std::string& key, double value) {
  values_[key] = value;
}

bool ResultStore::Contains(const std::string& key) const {
  return values_.count(key) > 0;
}

Result<double> ResultStore::Get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return Status::NotFound("no such result key: " + key);
  }
  return it->second;
}

std::vector<std::string> ResultStore::KeysWithPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.push_back(it->first);
  }
  return out;
}

namespace {

std::string EscapeJsonString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string ResultStore::ToJson() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ",\n";
    first = false;
    if (std::isfinite(value)) {
      out += StrFormat("  \"%s\": %.17g", EscapeJsonString(key).c_str(),
                       value);
    } else {
      out += StrFormat("  \"%s\": null", EscapeJsonString(key).c_str());
    }
  }
  out += "\n}\n";
  return out;
}

Result<ResultStore> ResultStore::FromJson(const std::string& json) {
  ResultStore store;
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == '\n' || json[pos] == '\t' ||
            json[pos] == '\r' || json[pos] == ',')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos >= json.size() || json[pos] != '{') {
    return Status::InvalidArgument("expected '{' in result JSON");
  }
  ++pos;
  while (true) {
    skip_ws();
    if (pos >= json.size()) {
      return Status::InvalidArgument("unterminated result JSON");
    }
    if (json[pos] == '}') break;
    if (json[pos] != '"') {
      return Status::InvalidArgument("expected key string in result JSON");
    }
    ++pos;
    std::string key;
    while (pos < json.size() && json[pos] != '"') {
      if (json[pos] == '\\' && pos + 1 < json.size()) {
        ++pos;
        switch (json[pos]) {
          case 'n':
            key.push_back('\n');
            break;
          case 't':
            key.push_back('\t');
            break;
          default:
            key.push_back(json[pos]);
        }
      } else {
        key.push_back(json[pos]);
      }
      ++pos;
    }
    if (pos >= json.size()) {
      return Status::InvalidArgument("unterminated key in result JSON");
    }
    ++pos;  // closing quote
    skip_ws();
    if (pos >= json.size() || json[pos] != ':') {
      return Status::InvalidArgument("expected ':' in result JSON");
    }
    ++pos;
    skip_ws();
    if (StartsWith(std::string_view(json).substr(pos), "null")) {
      store.Put(key, std::nan(""));
      pos += 4;
      continue;
    }
    const char* begin = json.c_str() + pos;
    char* end = nullptr;
    double value = std::strtod(begin, &end);
    if (end == begin) {
      return Status::InvalidArgument("expected number in result JSON");
    }
    pos += static_cast<size_t>(end - begin);
    store.Put(key, value);
  }
  return store;
}

Status ResultStore::SaveToFile(const std::string& path) const {
  // Atomic write + checksum footer: a crash mid-save leaves the previous
  // file intact, and a torn/bit-rotted file is detectable on load instead
  // of being silently reused.
  return WriteChecksummedFile(path, ToJson());
}

Result<ResultStore> ResultStore::LoadFromFile(const std::string& path) {
  FC_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return LoadFromString(content, path);
}

Result<ResultStore> ResultStore::LoadFromString(const std::string& content,
                                                const std::string& origin) {
  if (HasChecksumFooter(content)) {
    Result<std::string> body = VerifyChecksumFooter(content);
    if (!body.ok()) {
      return Status::InvalidArgument(origin + ": " + body.status().message());
    }
    return FromJson(*body);
  }
  // Legacy content without a footer (pre-checksum cache): parse as-is.
  return FromJson(content);
}

void ResultStore::MergeFrom(const ResultStore& other) {
  for (const auto& [key, value] : other.values_) {
    values_[key] = value;
  }
}

std::string MetricKey(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    if (part.empty()) continue;
    if (!out.empty()) out += "__";
    out += part;
  }
  return out;
}

}  // namespace fairclean
