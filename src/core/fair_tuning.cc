#include "core/fair_tuning.h"

#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "data/split.h"
#include "ml/metrics.h"
#include "obs/trace.h"

namespace fairclean {

std::vector<int> MembershipFromAssignment(const GroupAssignment& assignment) {
  std::vector<int> membership(assignment.privileged.size(), 0);
  for (size_t i = 0; i < membership.size(); ++i) {
    if (assignment.privileged[i]) {
      membership[i] = 1;
    } else if (assignment.disadvantaged[i]) {
      membership[i] = -1;
    }
  }
  return membership;
}

namespace {

// Mean |fairness gap| of predictions on one validation fold.
Result<double> FoldUnfairness(const std::vector<int>& y_true,
                              const std::vector<int>& y_pred,
                              const std::vector<int>& membership,
                              FairnessMetric metric) {
  GroupAssignment assignment;
  assignment.privileged.resize(membership.size());
  assignment.disadvantaged.resize(membership.size());
  for (size_t i = 0; i < membership.size(); ++i) {
    assignment.privileged[i] = membership[i] > 0;
    assignment.disadvantaged[i] = membership[i] < 0;
  }
  FC_ASSIGN_OR_RETURN(GroupConfusion confusion,
                      ComputeGroupConfusion(y_true, y_pred, assignment));
  double gap = AbsoluteFairnessGap(metric, confusion);
  // A NaN gap (e.g. the FPR gap when a group has no negative labels) means
  // the metric is undefined on this fold; skip the fold rather than fold a
  // non-finite value into the candidate's mean unfairness.
  if (!std::isfinite(gap)) {
    return Status::InvalidArgument(
        "fairness gap undefined on this fold (degenerate group)");
  }
  return gap;
}

}  // namespace

Result<FairTuneOutcome> FairTuneAndFit(const TunedModelFamily& family,
                                       const Matrix& x,
                                       const std::vector<int>& y,
                                       const std::vector<int>& group_membership,
                                       const FairTuneOptions& options,
                                       Rng* rng) {
  if (family.param_grid.empty()) {
    return Status::InvalidArgument("empty hyperparameter grid");
  }
  if (x.rows() != y.size() || x.rows() != group_membership.size()) {
    return Status::InvalidArgument("feature/label/group size mismatch");
  }
  if (x.rows() < options.num_folds) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  if (options.max_unfairness < 0.0) {
    return Status::InvalidArgument("unfairness budget must be non-negative");
  }
  obs::TraceSpan span("ml", [&] { return "FairTuneAndFit " + family.name; });

  Rng fold_rng = rng->Fork(0xfa12);
  std::vector<TrainTestIndices> folds =
      KFoldIndices(x.rows(), options.num_folds, &fold_rng);

  struct Candidate {
    double param = 0.0;
    double accuracy = 0.0;
    double unfairness = 0.0;
    bool evaluated = false;
  };
  struct FoldEval {
    bool ok = false;
    double accuracy = 0.0;
    double unfairness = 0.0;
  };

  ThreadPool* pool = ThreadPool::SharedForFolds();
  // Fold-data cache shared across the grid (see ml/tuning.cc): slices and
  // per-fold presorts are pure data movement, so hoisting them out of the
  // grid loop cannot change any random draw or score.
  std::vector<TuningFoldData> fold_data = MaterializeTuningFolds(
      x, y, folds, family.wants_presort, &group_membership);
  std::vector<Candidate> candidates;
  for (double param : family.param_grid) {
    Candidate candidate;
    candidate.param = param;
    // Pre-fork in fold order — Fork advances the parent engine, so the fork
    // order must match the sequential loop for byte-identical results.
    std::vector<Rng> fit_rngs;
    fit_rngs.reserve(folds.size());
    for (size_t f = 0; f < folds.size(); ++f) {
      fit_rngs.push_back(rng->Fork(0xfa17 + f));
    }
    std::vector<FoldEval> evals =
        RunIndexed(pool, folds.size(), [&](size_t f) -> FoldEval {
          obs::TraceSpan fold_span("ml", [&] {
            return "fair fold " + std::to_string(f) + " " + family.name;
          });
          FoldEval eval;
          const TuningFoldData& data = fold_data[f];
          std::unique_ptr<Classifier> model = family.make(param);
          Status st = model->FitWithPresort(
              data.train_x, data.train_y, &fit_rngs[f],
              data.has_presort ? &data.train_presort : nullptr);
          if (!st.ok()) return eval;
          std::vector<int> predictions = model->Predict(data.valid_x);
          Result<double> unfairness = FoldUnfairness(
              data.valid_y, predictions, data.valid_membership,
              options.metric);
          if (!unfairness.ok()) return eval;  // degenerate group; skip fold
          eval.accuracy = AccuracyScore(data.valid_y, predictions);
          eval.unfairness = *unfairness;
          eval.ok = true;
          return eval;
        });
    double accuracy_sum = 0.0;
    double unfairness_sum = 0.0;
    size_t evaluated = 0;
    for (const FoldEval& eval : evals) {  // fold order: float sums unchanged
      if (!eval.ok) continue;
      accuracy_sum += eval.accuracy;
      unfairness_sum += eval.unfairness;
      ++evaluated;
    }
    if (evaluated == 0) continue;
    candidate.accuracy = accuracy_sum / static_cast<double>(evaluated);
    candidate.unfairness = unfairness_sum / static_cast<double>(evaluated);
    candidate.evaluated = true;
    candidates.push_back(candidate);
  }
  if (candidates.empty()) {
    return Status::Internal("no hyperparameter could be evaluated");
  }

  // Most accurate within budget; fairest overall as the fallback.
  const Candidate* best = nullptr;
  for (const Candidate& candidate : candidates) {
    if (candidate.unfairness > options.max_unfairness) continue;
    if (best == nullptr || candidate.accuracy > best->accuracy) {
      best = &candidate;
    }
  }
  bool within_budget = best != nullptr;
  if (best == nullptr) {
    for (const Candidate& candidate : candidates) {
      if (best == nullptr || candidate.unfairness < best->unfairness) {
        best = &candidate;
      }
    }
  }

  FairTuneOutcome outcome;
  outcome.best_param = best->param;
  outcome.best_cv_accuracy = best->accuracy;
  outcome.best_cv_unfairness = best->unfairness;
  outcome.within_budget = within_budget;
  outcome.model = family.make(best->param);
  Rng final_rng = rng->Fork(0xfa1f);
  FC_RETURN_IF_ERROR(outcome.model->Fit(x, y, &final_rng));
  return outcome;
}

}  // namespace fairclean
