#include "fairness/group.h"

#include <cmath>

#include "common/strings.h"

namespace fairclean {

namespace {

const char* OpSymbol(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq:
      return "=";
    case PredicateOp::kGt:
      return ">";
    case PredicateOp::kGe:
      return ">=";
    case PredicateOp::kLt:
      return "<";
    case PredicateOp::kLe:
      return "<=";
  }
  return "?";
}

bool CompareNumeric(double value, PredicateOp op, double threshold) {
  switch (op) {
    case PredicateOp::kEq:
      return value == threshold;
    case PredicateOp::kGt:
      return value > threshold;
    case PredicateOp::kGe:
      return value >= threshold;
    case PredicateOp::kLt:
      return value < threshold;
    case PredicateOp::kLe:
      return value <= threshold;
  }
  return false;
}

}  // namespace

Result<std::vector<bool>> GroupPredicate::Evaluate(
    const DataFrame& frame) const {
  if (!frame.HasColumn(attribute)) {
    return Status::NotFound("sensitive attribute not found: " + attribute);
  }
  const Column& column = frame.column(attribute);
  std::vector<bool> out(frame.num_rows(), false);
  if (column.is_numeric()) {
    for (size_t row = 0; row < column.size(); ++row) {
      double v = column.Value(row);
      if (std::isfinite(v)) out[row] = CompareNumeric(v, op, numeric_value);
    }
    return out;
  }
  if (op != PredicateOp::kEq) {
    return Status::InvalidArgument(
        "categorical predicates support only equality: " + attribute);
  }
  int32_t code = column.CodeOf(category);
  if (code == Column::kMissingCode) {
    return Status::NotFound(StrFormat("category '%s' not in attribute '%s'",
                                      category.c_str(), attribute.c_str()));
  }
  for (size_t row = 0; row < column.size(); ++row) {
    out[row] = column.Code(row) == code;
  }
  return out;
}

std::string GroupPredicate::Description() const {
  if (category.empty()) {
    return StrFormat("%s %s %g", attribute.c_str(), OpSymbol(op),
                     numeric_value);
  }
  return StrFormat("%s %s %s", attribute.c_str(), OpSymbol(op),
                   category.c_str());
}

size_t GroupAssignment::PrivilegedCount() const {
  size_t count = 0;
  for (bool member : privileged) {
    if (member) ++count;
  }
  return count;
}

size_t GroupAssignment::DisadvantagedCount() const {
  size_t count = 0;
  for (bool member : disadvantaged) {
    if (member) ++count;
  }
  return count;
}

Result<GroupAssignment> SingleAttributeGroups(
    const DataFrame& frame, const GroupPredicate& predicate) {
  FC_ASSIGN_OR_RETURN(std::vector<bool> privileged,
                      predicate.Evaluate(frame));
  GroupAssignment assignment;
  assignment.disadvantaged.resize(privileged.size());
  for (size_t row = 0; row < privileged.size(); ++row) {
    assignment.disadvantaged[row] = !privileged[row];
  }
  assignment.privileged = std::move(privileged);
  return assignment;
}

Result<GroupAssignment> IntersectionalGroups(const DataFrame& frame,
                                             const GroupPredicate& first,
                                             const GroupPredicate& second) {
  FC_ASSIGN_OR_RETURN(std::vector<bool> first_priv, first.Evaluate(frame));
  FC_ASSIGN_OR_RETURN(std::vector<bool> second_priv, second.Evaluate(frame));
  GroupAssignment assignment;
  assignment.privileged.resize(first_priv.size());
  assignment.disadvantaged.resize(first_priv.size());
  for (size_t row = 0; row < first_priv.size(); ++row) {
    assignment.privileged[row] = first_priv[row] && second_priv[row];
    assignment.disadvantaged[row] = !first_priv[row] && !second_priv[row];
  }
  return assignment;
}

}  // namespace fairclean
