#ifndef FAIRCLEAN_FAIRNESS_FAIRNESS_METRICS_H_
#define FAIRCLEAN_FAIRNESS_FAIRNESS_METRICS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fairness/group.h"
#include "ml/metrics.h"

namespace fairclean {

/// Confusion matrices aggregated per group — the "raw" representation the
/// paper's framework records so that any group fairness metric can be
/// derived afterwards.
struct GroupConfusion {
  ConfusionMatrix privileged;
  ConfusionMatrix disadvantaged;
};

/// Tallies group-wise confusion matrices from parallel label/prediction
/// vectors and a group assignment. Rows excluded from both groups (possible
/// under intersectional definitions) are ignored.
Result<GroupConfusion> ComputeGroupConfusion(const std::vector<int>& y_true,
                                             const std::vector<int>& y_pred,
                                             const GroupAssignment& groups);

/// Group fairness metrics. The paper reports predictive parity and equal
/// opportunity; the remaining three are provided as extensions since the
/// framework records full confusion matrices.
enum class FairnessMetric {
  /// Precision difference (privileged - disadvantaged).
  kPredictiveParity,
  /// Recall / true-positive-rate difference.
  kEqualOpportunity,
  /// Positive-prediction-rate difference (demographic parity).
  kDemographicParity,
  /// False-positive-rate difference (the second half of equalized odds).
  kFalsePositiveRateParity,
  /// Accuracy difference.
  kAccuracyParity,
};

/// Paper-style short name ("PP", "EO", "DP", "FPRP", "AP").
const char* FairnessMetricShortName(FairnessMetric metric);
/// Long name ("predictive_parity", ...).
const char* FairnessMetricName(FairnessMetric metric);
/// Parses either the short or the long name.
Result<FairnessMetric> FairnessMetricByName(const std::string& name);

/// Signed disparity (privileged-group value minus disadvantaged-group
/// value) of `metric` on the group confusion matrices. Zero disparity means
/// the metric is satisfied. The false-positive-rate gap is NaN when either
/// group has no negative labels — the rate is undefined there, and callers
/// (fold scoring, the study driver) treat the repeat as degenerate rather
/// than read a fake gap of zero.
double FairnessGap(FairnessMetric metric, const GroupConfusion& confusion);

/// |FairnessGap| — the unfairness score compared between dirty and repaired
/// models in the study (smaller is fairer).
double AbsoluteFairnessGap(FairnessMetric metric,
                           const GroupConfusion& confusion);

}  // namespace fairclean

#endif  // FAIRCLEAN_FAIRNESS_FAIRNESS_METRICS_H_
