#ifndef FAIRCLEAN_FAIRNESS_GROUP_H_
#define FAIRCLEAN_FAIRNESS_GROUP_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataframe.h"

namespace fairclean {

/// Comparison operators for privileged-group predicates (Listing 1 of the
/// paper uses operator.gt / operator.eq).
enum class PredicateOp { kEq, kGt, kGe, kLt, kLe };

/// A declarative membership test on a sensitive attribute, e.g.
/// ("age", kGt, 25) or ("sex", kEq, "male"). Rows satisfying the predicate
/// belong to the privileged group.
struct GroupPredicate {
  std::string attribute;
  PredicateOp op = PredicateOp::kEq;
  /// Threshold for numeric attributes.
  double numeric_value = 0.0;
  /// Category for categorical attributes (kEq only).
  std::string category;

  static GroupPredicate NumericGt(std::string attribute, double value) {
    GroupPredicate p;
    p.attribute = std::move(attribute);
    p.op = PredicateOp::kGt;
    p.numeric_value = value;
    return p;
  }
  static GroupPredicate CategoryEq(std::string attribute,
                                   std::string category) {
    GroupPredicate p;
    p.attribute = std::move(attribute);
    p.op = PredicateOp::kEq;
    p.category = std::move(category);
    return p;
  }

  /// Evaluates the predicate per row. Rows with a missing sensitive value
  /// evaluate to false (treated as not privileged).
  Result<std::vector<bool>> Evaluate(const DataFrame& frame) const;

  /// Human-readable form, e.g. "age > 25" or "sex = male".
  std::string Description() const;
};

/// Per-row group membership. For single-attribute definitions this is a
/// partition (privileged[i] XOR disadvantaged[i]); for intersectional
/// definitions rows that are privileged along one axis and disadvantaged
/// along the other belong to neither group, following the paper.
struct GroupAssignment {
  std::vector<bool> privileged;
  std::vector<bool> disadvantaged;

  size_t PrivilegedCount() const;
  size_t DisadvantagedCount() const;
};

/// Single-attribute grouping: privileged = predicate holds, disadvantaged =
/// all other rows.
Result<GroupAssignment> SingleAttributeGroups(const DataFrame& frame,
                                              const GroupPredicate& predicate);

/// Intersectional grouping over two axes: privileged = both predicates
/// hold; disadvantaged = neither holds; mixed rows are excluded.
Result<GroupAssignment> IntersectionalGroups(const DataFrame& frame,
                                             const GroupPredicate& first,
                                             const GroupPredicate& second);

}  // namespace fairclean

#endif  // FAIRCLEAN_FAIRNESS_GROUP_H_
