#include "fairness/fairness_metrics.h"

#include <cmath>
#include <limits>

namespace fairclean {

Result<GroupConfusion> ComputeGroupConfusion(const std::vector<int>& y_true,
                                             const std::vector<int>& y_pred,
                                             const GroupAssignment& groups) {
  if (y_true.size() != y_pred.size() ||
      y_true.size() != groups.privileged.size() ||
      y_true.size() != groups.disadvantaged.size()) {
    return Status::InvalidArgument("size mismatch in group confusion input");
  }
  GroupConfusion out;
  for (size_t i = 0; i < y_true.size(); ++i) {
    int t = y_true[i];
    int p = y_pred[i];
    if ((t != 0 && t != 1) || (p != 0 && p != 1)) {
      return Status::InvalidArgument("labels must be binary (0/1)");
    }
    ConfusionMatrix* cm = nullptr;
    if (groups.privileged[i]) {
      cm = &out.privileged;
    } else if (groups.disadvantaged[i]) {
      cm = &out.disadvantaged;
    } else {
      continue;  // excluded under intersectional definitions
    }
    if (t == 1 && p == 1) ++cm->tp;
    else if (t == 1 && p == 0) ++cm->fn;
    else if (t == 0 && p == 1) ++cm->fp;
    else ++cm->tn;
  }
  return out;
}

const char* FairnessMetricShortName(FairnessMetric metric) {
  switch (metric) {
    case FairnessMetric::kPredictiveParity:
      return "PP";
    case FairnessMetric::kEqualOpportunity:
      return "EO";
    case FairnessMetric::kDemographicParity:
      return "DP";
    case FairnessMetric::kFalsePositiveRateParity:
      return "FPRP";
    case FairnessMetric::kAccuracyParity:
      return "AP";
  }
  return "?";
}

const char* FairnessMetricName(FairnessMetric metric) {
  switch (metric) {
    case FairnessMetric::kPredictiveParity:
      return "predictive_parity";
    case FairnessMetric::kEqualOpportunity:
      return "equal_opportunity";
    case FairnessMetric::kDemographicParity:
      return "demographic_parity";
    case FairnessMetric::kFalsePositiveRateParity:
      return "false_positive_rate_parity";
    case FairnessMetric::kAccuracyParity:
      return "accuracy_parity";
  }
  return "?";
}

Result<FairnessMetric> FairnessMetricByName(const std::string& name) {
  for (FairnessMetric metric :
       {FairnessMetric::kPredictiveParity, FairnessMetric::kEqualOpportunity,
        FairnessMetric::kDemographicParity,
        FairnessMetric::kFalsePositiveRateParity,
        FairnessMetric::kAccuracyParity}) {
    if (name == FairnessMetricShortName(metric) ||
        name == FairnessMetricName(metric)) {
      return metric;
    }
  }
  return Status::NotFound("unknown fairness metric: " + name);
}

namespace {

double FalsePositiveRate(const ConfusionMatrix& cm) {
  int64_t denom = cm.fp + cm.tn;
  // A group with no negative labels has no false-positive rate. Returning
  // 0.0 here used to make such a group look perfectly calibrated and
  // silently shrink the FPR gap; NaN instead marks the repeat as degenerate
  // so the study driver retries or skips it.
  if (denom == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(cm.fp) / static_cast<double>(denom);
}

}  // namespace

double FairnessGap(FairnessMetric metric, const GroupConfusion& confusion) {
  const ConfusionMatrix& priv = confusion.privileged;
  const ConfusionMatrix& dis = confusion.disadvantaged;
  switch (metric) {
    case FairnessMetric::kPredictiveParity:
      return priv.Precision() - dis.Precision();
    case FairnessMetric::kEqualOpportunity:
      return priv.Recall() - dis.Recall();
    case FairnessMetric::kDemographicParity:
      return priv.PositiveRate() - dis.PositiveRate();
    case FairnessMetric::kFalsePositiveRateParity:
      return FalsePositiveRate(priv) - FalsePositiveRate(dis);
    case FairnessMetric::kAccuracyParity:
      return priv.Accuracy() - dis.Accuracy();
  }
  return 0.0;
}

double AbsoluteFairnessGap(FairnessMetric metric,
                           const GroupConfusion& confusion) {
  return std::abs(FairnessGap(metric, confusion));
}

}  // namespace fairclean
