# Empty compiler generated dependencies file for cleaning_selector.
# This may be replaced when dependencies are built.
