file(REMOVE_RECURSE
  "CMakeFiles/cleaning_selector.dir/cleaning_selector.cc.o"
  "CMakeFiles/cleaning_selector.dir/cleaning_selector.cc.o.d"
  "cleaning_selector"
  "cleaning_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
