file(REMOVE_RECURSE
  "CMakeFiles/lending_audit.dir/lending_audit.cc.o"
  "CMakeFiles/lending_audit.dir/lending_audit.cc.o.d"
  "lending_audit"
  "lending_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lending_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
