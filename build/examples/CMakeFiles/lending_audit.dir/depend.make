# Empty dependencies file for lending_audit.
# This may be replaced when dependencies are built.
