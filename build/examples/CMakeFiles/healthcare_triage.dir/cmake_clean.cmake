file(REMOVE_RECURSE
  "CMakeFiles/healthcare_triage.dir/healthcare_triage.cc.o"
  "CMakeFiles/healthcare_triage.dir/healthcare_triage.cc.o.d"
  "healthcare_triage"
  "healthcare_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
