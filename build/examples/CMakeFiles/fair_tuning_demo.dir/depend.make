# Empty dependencies file for fair_tuning_demo.
# This may be replaced when dependencies are built.
