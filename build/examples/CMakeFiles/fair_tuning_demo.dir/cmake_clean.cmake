file(REMOVE_RECURSE
  "CMakeFiles/fair_tuning_demo.dir/fair_tuning_demo.cc.o"
  "CMakeFiles/fair_tuning_demo.dir/fair_tuning_demo.cc.o.d"
  "fair_tuning_demo"
  "fair_tuning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_tuning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
