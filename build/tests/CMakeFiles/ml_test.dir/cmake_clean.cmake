file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/classifier_properties_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/classifier_properties_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/encoder_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/encoder_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/gbdt_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/gbdt_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/isolation_forest_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/isolation_forest_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/knn_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/knn_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/linalg_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/linalg_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/matrix_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/matrix_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/regression_tree_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/regression_tree_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/tuning_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/tuning_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
