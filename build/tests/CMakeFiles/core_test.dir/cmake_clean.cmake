file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/cleaning_test.cc.o"
  "CMakeFiles/core_test.dir/core/cleaning_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/disparity_test.cc.o"
  "CMakeFiles/core_test.dir/core/disparity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/fair_selector_test.cc.o"
  "CMakeFiles/core_test.dir/core/fair_selector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/fair_tuning_test.cc.o"
  "CMakeFiles/core_test.dir/core/fair_tuning_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/impact_test.cc.o"
  "CMakeFiles/core_test.dir/core/impact_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/quality_report_test.cc.o"
  "CMakeFiles/core_test.dir/core/quality_report_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/results_test.cc.o"
  "CMakeFiles/core_test.dir/core/results_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/runner_test.cc.o"
  "CMakeFiles/core_test.dir/core/runner_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
