
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cleaning_test.cc" "tests/CMakeFiles/core_test.dir/core/cleaning_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cleaning_test.cc.o.d"
  "/root/repo/tests/core/disparity_test.cc" "tests/CMakeFiles/core_test.dir/core/disparity_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/disparity_test.cc.o.d"
  "/root/repo/tests/core/fair_selector_test.cc" "tests/CMakeFiles/core_test.dir/core/fair_selector_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/fair_selector_test.cc.o.d"
  "/root/repo/tests/core/fair_tuning_test.cc" "tests/CMakeFiles/core_test.dir/core/fair_tuning_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/fair_tuning_test.cc.o.d"
  "/root/repo/tests/core/impact_test.cc" "tests/CMakeFiles/core_test.dir/core/impact_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/impact_test.cc.o.d"
  "/root/repo/tests/core/quality_report_test.cc" "tests/CMakeFiles/core_test.dir/core/quality_report_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/quality_report_test.cc.o.d"
  "/root/repo/tests/core/results_test.cc" "tests/CMakeFiles/core_test.dir/core/results_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/results_test.cc.o.d"
  "/root/repo/tests/core/runner_test.cc" "tests/CMakeFiles/core_test.dir/core/runner_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/runner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fairclean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/fairclean_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/fairclean_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/fairclean_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/fairclean_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fairclean_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
