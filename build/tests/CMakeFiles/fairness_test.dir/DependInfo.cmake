
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fairness/fairness_metrics_test.cc" "tests/CMakeFiles/fairness_test.dir/fairness/fairness_metrics_test.cc.o" "gcc" "tests/CMakeFiles/fairness_test.dir/fairness/fairness_metrics_test.cc.o.d"
  "/root/repo/tests/fairness/group_test.cc" "tests/CMakeFiles/fairness_test.dir/fairness/group_test.cc.o" "gcc" "tests/CMakeFiles/fairness_test.dir/fairness/group_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fairclean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/fairclean_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/fairclean_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/fairclean_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/fairclean_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fairclean_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
