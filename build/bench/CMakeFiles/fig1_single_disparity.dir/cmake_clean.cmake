file(REMOVE_RECURSE
  "CMakeFiles/fig1_single_disparity.dir/fig1_single_disparity.cc.o"
  "CMakeFiles/fig1_single_disparity.dir/fig1_single_disparity.cc.o.d"
  "fig1_single_disparity"
  "fig1_single_disparity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_single_disparity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
