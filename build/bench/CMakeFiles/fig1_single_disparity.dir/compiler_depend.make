# Empty compiler generated dependencies file for fig1_single_disparity.
# This may be replaced when dependencies are built.
