file(REMOVE_RECURSE
  "libfairclean_bench_util.a"
)
