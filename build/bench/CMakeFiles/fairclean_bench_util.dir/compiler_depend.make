# Empty compiler generated dependencies file for fairclean_bench_util.
# This may be replaced when dependencies are built.
