file(REMOVE_RECURSE
  "CMakeFiles/fairclean_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fairclean_bench_util.dir/bench_util.cc.o.d"
  "libfairclean_bench_util.a"
  "libfairclean_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
