file(REMOVE_RECURSE
  "CMakeFiles/table_14_models.dir/table_14_models.cc.o"
  "CMakeFiles/table_14_models.dir/table_14_models.cc.o.d"
  "table_14_models"
  "table_14_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_14_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
