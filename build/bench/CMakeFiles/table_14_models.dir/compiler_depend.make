# Empty compiler generated dependencies file for table_14_models.
# This may be replaced when dependencies are built.
