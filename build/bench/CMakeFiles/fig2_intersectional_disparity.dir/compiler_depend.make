# Empty compiler generated dependencies file for fig2_intersectional_disparity.
# This may be replaced when dependencies are built.
