file(REMOVE_RECURSE
  "CMakeFiles/fig2_intersectional_disparity.dir/fig2_intersectional_disparity.cc.o"
  "CMakeFiles/fig2_intersectional_disparity.dir/fig2_intersectional_disparity.cc.o.d"
  "fig2_intersectional_disparity"
  "fig2_intersectional_disparity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_intersectional_disparity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
