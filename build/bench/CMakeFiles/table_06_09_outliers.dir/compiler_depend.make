# Empty compiler generated dependencies file for table_06_09_outliers.
# This may be replaced when dependencies are built.
