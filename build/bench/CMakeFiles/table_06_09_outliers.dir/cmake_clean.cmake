file(REMOVE_RECURSE
  "CMakeFiles/table_06_09_outliers.dir/table_06_09_outliers.cc.o"
  "CMakeFiles/table_06_09_outliers.dir/table_06_09_outliers.cc.o.d"
  "table_06_09_outliers"
  "table_06_09_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_06_09_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
