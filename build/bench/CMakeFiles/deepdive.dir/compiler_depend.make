# Empty compiler generated dependencies file for deepdive.
# This may be replaced when dependencies are built.
