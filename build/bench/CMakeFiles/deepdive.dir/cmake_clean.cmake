file(REMOVE_RECURSE
  "CMakeFiles/deepdive.dir/deepdive.cc.o"
  "CMakeFiles/deepdive.dir/deepdive.cc.o.d"
  "deepdive"
  "deepdive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepdive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
