# Empty dependencies file for table_02_05_missing.
# This may be replaced when dependencies are built.
