file(REMOVE_RECURSE
  "CMakeFiles/table_02_05_missing.dir/table_02_05_missing.cc.o"
  "CMakeFiles/table_02_05_missing.dir/table_02_05_missing.cc.o.d"
  "table_02_05_missing"
  "table_02_05_missing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_02_05_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
