file(REMOVE_RECURSE
  "CMakeFiles/table_10_13_mislabels.dir/table_10_13_mislabels.cc.o"
  "CMakeFiles/table_10_13_mislabels.dir/table_10_13_mislabels.cc.o.d"
  "table_10_13_mislabels"
  "table_10_13_mislabels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_10_13_mislabels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
