# Empty dependencies file for table_10_13_mislabels.
# This may be replaced when dependencies are built.
