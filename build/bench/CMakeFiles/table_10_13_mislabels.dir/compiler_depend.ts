# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table_10_13_mislabels.
