file(REMOVE_RECURSE
  "CMakeFiles/fairclean_repair.dir/imputer.cc.o"
  "CMakeFiles/fairclean_repair.dir/imputer.cc.o.d"
  "CMakeFiles/fairclean_repair.dir/label_repair.cc.o"
  "CMakeFiles/fairclean_repair.dir/label_repair.cc.o.d"
  "CMakeFiles/fairclean_repair.dir/outlier_repair.cc.o"
  "CMakeFiles/fairclean_repair.dir/outlier_repair.cc.o.d"
  "libfairclean_repair.a"
  "libfairclean_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
