
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/imputer.cc" "src/repair/CMakeFiles/fairclean_repair.dir/imputer.cc.o" "gcc" "src/repair/CMakeFiles/fairclean_repair.dir/imputer.cc.o.d"
  "/root/repo/src/repair/label_repair.cc" "src/repair/CMakeFiles/fairclean_repair.dir/label_repair.cc.o" "gcc" "src/repair/CMakeFiles/fairclean_repair.dir/label_repair.cc.o.d"
  "/root/repo/src/repair/outlier_repair.cc" "src/repair/CMakeFiles/fairclean_repair.dir/outlier_repair.cc.o" "gcc" "src/repair/CMakeFiles/fairclean_repair.dir/outlier_repair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/fairclean_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fairclean_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
