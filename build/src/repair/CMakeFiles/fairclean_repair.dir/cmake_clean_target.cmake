file(REMOVE_RECURSE
  "libfairclean_repair.a"
)
