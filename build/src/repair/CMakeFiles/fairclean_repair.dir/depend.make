# Empty dependencies file for fairclean_repair.
# This may be replaced when dependencies are built.
