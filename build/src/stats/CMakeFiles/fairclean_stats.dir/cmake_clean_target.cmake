file(REMOVE_RECURSE
  "libfairclean_stats.a"
)
