file(REMOVE_RECURSE
  "CMakeFiles/fairclean_stats.dir/descriptive.cc.o"
  "CMakeFiles/fairclean_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/fairclean_stats.dir/distributions.cc.o"
  "CMakeFiles/fairclean_stats.dir/distributions.cc.o.d"
  "CMakeFiles/fairclean_stats.dir/tests.cc.o"
  "CMakeFiles/fairclean_stats.dir/tests.cc.o.d"
  "libfairclean_stats.a"
  "libfairclean_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
