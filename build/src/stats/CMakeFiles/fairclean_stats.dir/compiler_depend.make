# Empty compiler generated dependencies file for fairclean_stats.
# This may be replaced when dependencies are built.
