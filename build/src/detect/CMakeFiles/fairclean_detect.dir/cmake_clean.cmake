file(REMOVE_RECURSE
  "CMakeFiles/fairclean_detect.dir/detector.cc.o"
  "CMakeFiles/fairclean_detect.dir/detector.cc.o.d"
  "CMakeFiles/fairclean_detect.dir/error_mask.cc.o"
  "CMakeFiles/fairclean_detect.dir/error_mask.cc.o.d"
  "CMakeFiles/fairclean_detect.dir/mislabel_detector.cc.o"
  "CMakeFiles/fairclean_detect.dir/mislabel_detector.cc.o.d"
  "CMakeFiles/fairclean_detect.dir/missing_detector.cc.o"
  "CMakeFiles/fairclean_detect.dir/missing_detector.cc.o.d"
  "CMakeFiles/fairclean_detect.dir/outlier_detectors.cc.o"
  "CMakeFiles/fairclean_detect.dir/outlier_detectors.cc.o.d"
  "libfairclean_detect.a"
  "libfairclean_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
