file(REMOVE_RECURSE
  "libfairclean_detect.a"
)
