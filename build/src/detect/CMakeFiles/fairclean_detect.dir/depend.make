# Empty dependencies file for fairclean_detect.
# This may be replaced when dependencies are built.
