
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detector.cc" "src/detect/CMakeFiles/fairclean_detect.dir/detector.cc.o" "gcc" "src/detect/CMakeFiles/fairclean_detect.dir/detector.cc.o.d"
  "/root/repo/src/detect/error_mask.cc" "src/detect/CMakeFiles/fairclean_detect.dir/error_mask.cc.o" "gcc" "src/detect/CMakeFiles/fairclean_detect.dir/error_mask.cc.o.d"
  "/root/repo/src/detect/mislabel_detector.cc" "src/detect/CMakeFiles/fairclean_detect.dir/mislabel_detector.cc.o" "gcc" "src/detect/CMakeFiles/fairclean_detect.dir/mislabel_detector.cc.o.d"
  "/root/repo/src/detect/missing_detector.cc" "src/detect/CMakeFiles/fairclean_detect.dir/missing_detector.cc.o" "gcc" "src/detect/CMakeFiles/fairclean_detect.dir/missing_detector.cc.o.d"
  "/root/repo/src/detect/outlier_detectors.cc" "src/detect/CMakeFiles/fairclean_detect.dir/outlier_detectors.cc.o" "gcc" "src/detect/CMakeFiles/fairclean_detect.dir/outlier_detectors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/fairclean_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
