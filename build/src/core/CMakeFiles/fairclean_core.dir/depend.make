# Empty dependencies file for fairclean_core.
# This may be replaced when dependencies are built.
