file(REMOVE_RECURSE
  "CMakeFiles/fairclean_core.dir/cleaning.cc.o"
  "CMakeFiles/fairclean_core.dir/cleaning.cc.o.d"
  "CMakeFiles/fairclean_core.dir/disparity.cc.o"
  "CMakeFiles/fairclean_core.dir/disparity.cc.o.d"
  "CMakeFiles/fairclean_core.dir/fair_selector.cc.o"
  "CMakeFiles/fairclean_core.dir/fair_selector.cc.o.d"
  "CMakeFiles/fairclean_core.dir/fair_tuning.cc.o"
  "CMakeFiles/fairclean_core.dir/fair_tuning.cc.o.d"
  "CMakeFiles/fairclean_core.dir/impact.cc.o"
  "CMakeFiles/fairclean_core.dir/impact.cc.o.d"
  "CMakeFiles/fairclean_core.dir/quality_report.cc.o"
  "CMakeFiles/fairclean_core.dir/quality_report.cc.o.d"
  "CMakeFiles/fairclean_core.dir/results.cc.o"
  "CMakeFiles/fairclean_core.dir/results.cc.o.d"
  "CMakeFiles/fairclean_core.dir/runner.cc.o"
  "CMakeFiles/fairclean_core.dir/runner.cc.o.d"
  "libfairclean_core.a"
  "libfairclean_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
