file(REMOVE_RECURSE
  "libfairclean_core.a"
)
