file(REMOVE_RECURSE
  "libfairclean_data.a"
)
