file(REMOVE_RECURSE
  "CMakeFiles/fairclean_data.dir/column.cc.o"
  "CMakeFiles/fairclean_data.dir/column.cc.o.d"
  "CMakeFiles/fairclean_data.dir/csv.cc.o"
  "CMakeFiles/fairclean_data.dir/csv.cc.o.d"
  "CMakeFiles/fairclean_data.dir/dataframe.cc.o"
  "CMakeFiles/fairclean_data.dir/dataframe.cc.o.d"
  "CMakeFiles/fairclean_data.dir/split.cc.o"
  "CMakeFiles/fairclean_data.dir/split.cc.o.d"
  "libfairclean_data.a"
  "libfairclean_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
