# Empty compiler generated dependencies file for fairclean_data.
# This may be replaced when dependencies are built.
