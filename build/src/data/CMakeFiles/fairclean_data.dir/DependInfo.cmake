
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/column.cc" "src/data/CMakeFiles/fairclean_data.dir/column.cc.o" "gcc" "src/data/CMakeFiles/fairclean_data.dir/column.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/fairclean_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/fairclean_data.dir/csv.cc.o.d"
  "/root/repo/src/data/dataframe.cc" "src/data/CMakeFiles/fairclean_data.dir/dataframe.cc.o" "gcc" "src/data/CMakeFiles/fairclean_data.dir/dataframe.cc.o.d"
  "/root/repo/src/data/split.cc" "src/data/CMakeFiles/fairclean_data.dir/split.cc.o" "gcc" "src/data/CMakeFiles/fairclean_data.dir/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
