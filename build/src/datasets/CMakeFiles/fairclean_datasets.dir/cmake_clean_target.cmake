file(REMOVE_RECURSE
  "libfairclean_datasets.a"
)
