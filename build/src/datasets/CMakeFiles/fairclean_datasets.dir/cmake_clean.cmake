file(REMOVE_RECURSE
  "CMakeFiles/fairclean_datasets.dir/adult.cc.o"
  "CMakeFiles/fairclean_datasets.dir/adult.cc.o.d"
  "CMakeFiles/fairclean_datasets.dir/credit.cc.o"
  "CMakeFiles/fairclean_datasets.dir/credit.cc.o.d"
  "CMakeFiles/fairclean_datasets.dir/folk.cc.o"
  "CMakeFiles/fairclean_datasets.dir/folk.cc.o.d"
  "CMakeFiles/fairclean_datasets.dir/generator.cc.o"
  "CMakeFiles/fairclean_datasets.dir/generator.cc.o.d"
  "CMakeFiles/fairclean_datasets.dir/german.cc.o"
  "CMakeFiles/fairclean_datasets.dir/german.cc.o.d"
  "CMakeFiles/fairclean_datasets.dir/heart.cc.o"
  "CMakeFiles/fairclean_datasets.dir/heart.cc.o.d"
  "CMakeFiles/fairclean_datasets.dir/spec.cc.o"
  "CMakeFiles/fairclean_datasets.dir/spec.cc.o.d"
  "libfairclean_datasets.a"
  "libfairclean_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
