# Empty compiler generated dependencies file for fairclean_datasets.
# This may be replaced when dependencies are built.
