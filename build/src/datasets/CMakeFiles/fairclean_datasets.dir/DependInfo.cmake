
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/adult.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/adult.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/adult.cc.o.d"
  "/root/repo/src/datasets/credit.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/credit.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/credit.cc.o.d"
  "/root/repo/src/datasets/folk.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/folk.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/folk.cc.o.d"
  "/root/repo/src/datasets/generator.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/generator.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/generator.cc.o.d"
  "/root/repo/src/datasets/german.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/german.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/german.cc.o.d"
  "/root/repo/src/datasets/heart.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/heart.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/heart.cc.o.d"
  "/root/repo/src/datasets/spec.cc" "src/datasets/CMakeFiles/fairclean_datasets.dir/spec.cc.o" "gcc" "src/datasets/CMakeFiles/fairclean_datasets.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fairness/CMakeFiles/fairclean_fairness.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/fairclean_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
