# Empty compiler generated dependencies file for fairclean_common.
# This may be replaced when dependencies are built.
