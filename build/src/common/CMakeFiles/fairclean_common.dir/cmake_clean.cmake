file(REMOVE_RECURSE
  "CMakeFiles/fairclean_common.dir/env.cc.o"
  "CMakeFiles/fairclean_common.dir/env.cc.o.d"
  "CMakeFiles/fairclean_common.dir/random.cc.o"
  "CMakeFiles/fairclean_common.dir/random.cc.o.d"
  "CMakeFiles/fairclean_common.dir/status.cc.o"
  "CMakeFiles/fairclean_common.dir/status.cc.o.d"
  "CMakeFiles/fairclean_common.dir/strings.cc.o"
  "CMakeFiles/fairclean_common.dir/strings.cc.o.d"
  "libfairclean_common.a"
  "libfairclean_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
