file(REMOVE_RECURSE
  "libfairclean_common.a"
)
