file(REMOVE_RECURSE
  "libfairclean_fairness.a"
)
