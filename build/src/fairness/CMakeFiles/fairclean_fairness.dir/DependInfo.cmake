
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fairness/fairness_metrics.cc" "src/fairness/CMakeFiles/fairclean_fairness.dir/fairness_metrics.cc.o" "gcc" "src/fairness/CMakeFiles/fairclean_fairness.dir/fairness_metrics.cc.o.d"
  "/root/repo/src/fairness/group.cc" "src/fairness/CMakeFiles/fairclean_fairness.dir/group.cc.o" "gcc" "src/fairness/CMakeFiles/fairclean_fairness.dir/group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/fairclean_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
