# Empty dependencies file for fairclean_fairness.
# This may be replaced when dependencies are built.
