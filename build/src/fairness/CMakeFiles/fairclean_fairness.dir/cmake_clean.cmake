file(REMOVE_RECURSE
  "CMakeFiles/fairclean_fairness.dir/fairness_metrics.cc.o"
  "CMakeFiles/fairclean_fairness.dir/fairness_metrics.cc.o.d"
  "CMakeFiles/fairclean_fairness.dir/group.cc.o"
  "CMakeFiles/fairclean_fairness.dir/group.cc.o.d"
  "libfairclean_fairness.a"
  "libfairclean_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
