file(REMOVE_RECURSE
  "CMakeFiles/fairclean_ml.dir/encoder.cc.o"
  "CMakeFiles/fairclean_ml.dir/encoder.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/gbdt.cc.o"
  "CMakeFiles/fairclean_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/isolation_forest.cc.o"
  "CMakeFiles/fairclean_ml.dir/isolation_forest.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/knn.cc.o"
  "CMakeFiles/fairclean_ml.dir/knn.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/linalg.cc.o"
  "CMakeFiles/fairclean_ml.dir/linalg.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/fairclean_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/metrics.cc.o"
  "CMakeFiles/fairclean_ml.dir/metrics.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/regression_tree.cc.o"
  "CMakeFiles/fairclean_ml.dir/regression_tree.cc.o.d"
  "CMakeFiles/fairclean_ml.dir/tuning.cc.o"
  "CMakeFiles/fairclean_ml.dir/tuning.cc.o.d"
  "libfairclean_ml.a"
  "libfairclean_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairclean_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
