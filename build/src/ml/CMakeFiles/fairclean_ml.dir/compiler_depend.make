# Empty compiler generated dependencies file for fairclean_ml.
# This may be replaced when dependencies are built.
