file(REMOVE_RECURSE
  "libfairclean_ml.a"
)
