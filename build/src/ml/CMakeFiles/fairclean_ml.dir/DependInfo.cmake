
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/encoder.cc" "src/ml/CMakeFiles/fairclean_ml.dir/encoder.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/encoder.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/fairclean_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/isolation_forest.cc" "src/ml/CMakeFiles/fairclean_ml.dir/isolation_forest.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/isolation_forest.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/fairclean_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linalg.cc" "src/ml/CMakeFiles/fairclean_ml.dir/linalg.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/linalg.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/fairclean_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/fairclean_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/regression_tree.cc" "src/ml/CMakeFiles/fairclean_ml.dir/regression_tree.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/regression_tree.cc.o.d"
  "/root/repo/src/ml/tuning.cc" "src/ml/CMakeFiles/fairclean_ml.dir/tuning.cc.o" "gcc" "src/ml/CMakeFiles/fairclean_ml.dir/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fairclean_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fairclean_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fairclean_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
