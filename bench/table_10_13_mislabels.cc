// Reproduces Tables X-XIII: impact of auto-cleaning (predicted) label
// errors on predictive parity and equal opportunity, for single-attribute
// and intersectional group definitions. One cleaning configuration
// (confident-learning detection + label flipping) x three models.
//
// Thin view over the suite scheduler's "tables_mislabels" unit (scope and
// paper references live in src/sched/suite_spec.cc; tools/run_suite runs
// the same unit as part of the whole grid, sharing its cached cells).

#include "bench/bench_util.h"

int main() { return fairclean::bench::RunTableBench("tables_mislabels"); }
