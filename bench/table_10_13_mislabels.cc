// Reproduces Tables X-XIII: impact of auto-cleaning (predicted) label
// errors on predictive parity and equal opportunity, for single-attribute
// and intersectional group definitions. One cleaning configuration
// (confident-learning detection + label flipping) x three models.

#include "bench/bench_util.h"

namespace {

using fairclean::bench::MislabelScope;
using fairclean::bench::PaperTable;
using fairclean::bench::RunTableBench;

const PaperTable kReferences[4] = {
    {"Table X: mislabels, single-attribute, PP",
     {{14.3, 14.3, 19.0}, {9.5, 0.0, 9.5}, {0.0, 0.0, 33.3}}},
    {"Table XI: mislabels, single-attribute, EO",
     {{0.0, 4.8, 0.0}, {0.0, 0.0, 14.3}, {23.8, 9.5, 47.6}}},
    {"Table XII: mislabels, intersectional, PP",
     {{25.0, 8.3, 33.3}, {0.0, 0.0, 0.0}, {0.0, 0.0, 33.3}}},
    {"Table XIII: mislabels, intersectional, EO",
     {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}, {25.0, 8.3, 66.7}}},
};

}  // namespace

int main() {
  return RunTableBench(MislabelScope(), kReferences,
                       "Tables X-XIII: impact of auto-cleaning label errors");
}
