// Serving benchmark: throughput and client-observed latency percentiles of
// the cleaning-advisor server at several client concurrencies.
//
// Process shape: the bench forks the server into a child process (before
// any thread exists, so the fork is safe), warms the cell cache with one
// request, then forks one load-generator child per concurrency level. Each
// load child times every request around CallWithRetry and reports
// percentiles over a pipe — the measurements are subprocess-side, so the
// server's own accounting can't flatter them.
//
// Scale: unless already set, the bench pins FAIRCLEAN_SAMPLE=300,
// FAIRCLEAN_REPEATS=4, FAIRCLEAN_FOLDS=2 (seconds, not minutes) and an
// isolated cache directory. Override any knob via the environment. Output:
// a human summary on stdout and a JSON report (default BENCH_serve.json,
// --out to change).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/log.h"
#include "serve/client.h"
#include "serve/load_gen.h"
#include "serve/server.h"

namespace {

using namespace fairclean;  // NOLINT

constexpr const char* kRequest =
    "{\"op\":\"analyze\",\"id\":\"bench\",\"dataset\":\"german\","
    "\"error_type\":\"missing_values\",\"model\":\"log-reg\"}";

void SetDefault(const char* name, const char* value) {
  ::setenv(name, value, /*overwrite=*/0);
}

// Child: runs the server until shutdown; reports the bound port over
// `port_fd` as one decimal line.
int ServerChild(int port_fd) {
  Result<serve::ServeOptions> options = serve::ServeOptionsFromEnv();
  if (!options.ok()) {
    std::fprintf(stderr, "serve_bench server: %s\n",
                 options.status().ToString().c_str());
    return 2;
  }
  options->port = 0;  // ephemeral; the parent learns it from the pipe
  serve::AdvisorServer server(std::move(*options));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "serve_bench server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::string line = StrFormat("%u\n", static_cast<unsigned>(server.port()));
  if (::write(port_fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    return 1;
  }
  ::close(port_fd);
  server.Wait();
  server.Shutdown();
  return 0;
}

// Child: one load run; reports LoadReport::ToJson over `out_fd`.
int LoadChild(uint16_t port, size_t clients, size_t requests, int out_fd) {
  serve::LoadOptions options;
  options.port = port;
  options.clients = clients;
  options.requests_per_client = requests;
  options.request_line = kRequest;
  options.seed = 42 + clients;
  Result<serve::LoadReport> report = serve::RunLoad(options);
  if (!report.ok()) {
    std::fprintf(stderr, "serve_bench load: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::string line = report->ToJson() + "\n";
  if (::write(out_fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    return 1;
  }
  ::close(out_fd);
  return 0;
}

Result<std::string> ReadPipeLine(int fd) {
  std::string text;
  char chunk[256];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pipe read failed");
    }
    if (n == 0) break;
    text.append(chunk, static_cast<size_t>(n));
  }
  while (!text.empty() && text.back() == '\n') text.pop_back();
  if (text.empty()) return Status::IoError("child reported nothing");
  return text;
}

int Run(int argc, char** argv) {
  obs::InitLogLevelFromEnv(obs::LogLevel::kInfo);

  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: serve_bench [--out path]\n");
      return 1;
    }
  }

  SetDefault("FAIRCLEAN_SAMPLE", "300");
  SetDefault("FAIRCLEAN_REPEATS", "4");
  SetDefault("FAIRCLEAN_FOLDS", "2");
  SetDefault("FAIRCLEAN_CACHE_DIR", "serve_bench_cache");
  SetDefault("FAIRCLEAN_SERVE_QUEUE", "64");

  int port_pipe[2];
  if (::pipe(port_pipe) != 0) {
    std::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  pid_t server_pid = ::fork();
  if (server_pid < 0) {
    std::fprintf(stderr, "fork failed\n");
    return 1;
  }
  if (server_pid == 0) {
    ::close(port_pipe[0]);
    ::_exit(ServerChild(port_pipe[1]));
  }
  ::close(port_pipe[1]);
  Result<std::string> port_text = ReadPipeLine(port_pipe[0]);
  ::close(port_pipe[0]);
  if (!port_text.ok()) {
    std::fprintf(stderr, "server never reported a port\n");
    ::kill(server_pid, SIGKILL);
    return 1;
  }
  uint16_t port = static_cast<uint16_t>(std::atoi(port_text->c_str()));
  std::printf("serve_bench: server pid %d on port %u\n",
              static_cast<int>(server_pid), static_cast<unsigned>(port));

  // Warm pass: the first analyze computes the cell; every measured request
  // afterwards exercises the serving path against the resident artifact.
  {
    serve::AdvisorClient client("127.0.0.1", port, 7);
    Result<serve::AdvisorResponse> warm = client.CallWithRetry(kRequest);
    if (!warm.ok() || !warm->ok()) {
      std::fprintf(stderr, "warm request failed: %s\n",
                   warm.ok() ? warm->error.c_str()
                             : warm.status().ToString().c_str());
      ::kill(server_pid, SIGKILL);
      return 1;
    }
  }

  const size_t kLevels[] = {1, 2, 4, 8};
  const size_t kRequests = 50;
  std::vector<std::string> level_reports;
  for (size_t clients : kLevels) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      std::fprintf(stderr, "pipe failed\n");
      ::kill(server_pid, SIGKILL);
      return 1;
    }
    pid_t load_pid = ::fork();
    if (load_pid < 0) {
      std::fprintf(stderr, "fork failed\n");
      ::kill(server_pid, SIGKILL);
      return 1;
    }
    if (load_pid == 0) {
      ::close(pipe_fds[0]);
      ::_exit(LoadChild(port, clients, kRequests, pipe_fds[1]));
    }
    ::close(pipe_fds[1]);
    Result<std::string> report = ReadPipeLine(pipe_fds[0]);
    ::close(pipe_fds[0]);
    int wstatus = 0;
    ::waitpid(load_pid, &wstatus, 0);
    if (!report.ok() || !WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      std::fprintf(stderr, "load level %zu failed\n", clients);
      ::kill(server_pid, SIGKILL);
      return 1;
    }
    std::printf("  clients=%zu %s\n", clients, report->c_str());
    level_reports.push_back(*report);
  }

  {
    serve::AdvisorClient client("127.0.0.1", port, 9);
    client.CallWithRetry("{\"op\":\"shutdown\",\"id\":\"bench\"}");
  }
  int wstatus = 0;
  ::waitpid(server_pid, &wstatus, 0);

  std::string json = "{\"bench\":\"serve\",\"request\":\"german/"
                     "missing_values/log-reg\",\"requests_per_client\":" +
                     StrFormat("%zu", kRequests) + ",\"levels\":[";
  for (size_t i = 0; i < level_reports.size(); ++i) {
    if (i > 0) json += ",";
    json += level_reports[i];
  }
  json += "]}\n";
  Status written = WriteFileAtomic(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("serve_bench: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
