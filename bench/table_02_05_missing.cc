// Reproduces Tables II-V: impact of auto-cleaning missing values on
// predictive parity and equal opportunity, for single-attribute and
// intersectional group definitions. Six imputation methods ({mean, median,
// mode} x {mode, dummy}) x three models x the dataset/attribute pairs with
// missing values.
//
// Thin view over the suite scheduler's "tables_missing" unit (scope and
// paper references live in src/sched/suite_spec.cc; tools/run_suite runs
// the same unit as part of the whole grid, sharing its cached cells).

#include "bench/bench_util.h"

int main() { return fairclean::bench::RunTableBench("tables_missing"); }
