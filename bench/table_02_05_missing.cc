// Reproduces Tables II-V: impact of auto-cleaning missing values on
// predictive parity and equal opportunity, for single-attribute and
// intersectional group definitions. Six imputation methods ({mean, median,
// mode} x {mode, dummy}) x three models x the dataset/attribute pairs with
// missing values.

#include "bench/bench_util.h"

namespace {

using fairclean::bench::MissingScope;
using fairclean::bench::PaperTable;
using fairclean::bench::RunTableBench;

const PaperTable kReferences[4] = {
    {"Table II: missing values, single-attribute, PP",
     {{3.7, 1.9, 16.7}, {5.6, 34.3, 7.4}, {3.7, 7.4, 19.4}}},
    {"Table III: missing values, single-attribute, EO",
     {{1.9, 15.7, 19.4}, {9.3, 25.9, 13.0}, {1.9, 1.9, 11.1}}},
    {"Table IV: missing values, intersectional, PP",
     {{0.0, 0.0, 5.6}, {3.7, 27.8, 11.1}, {3.7, 14.8, 33.3}}},
    {"Table V: missing values, intersectional, EO",
     {{0.0, 11.1, 11.1}, {7.4, 20.4, 22.2}, {0.0, 11.1, 16.7}}},
};

}  // namespace

int main() {
  return RunTableBench(MissingScope(), kReferences,
                       "Tables II-V: impact of auto-cleaning missing values");
}
