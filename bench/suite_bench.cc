// Suite-shard scaling benchmark (DESIGN.md Section 16): the 9-cell
// missing_values grid (tables_missing: adult / folk / german x three
// models) produced by 1, 2, and 4 cooperating claim-mode shard processes
// over one fresh shared cache per iteration, timed end to end — claim
// scans, lease traffic, cell production, and the winning shard's merge
// included.
//
// Process shape: the parent stays single-threaded and only forks, times,
// and parses. Each shard is a real forked process running RunSuiteShard
// with its stdout routed to /dev/null (the merged tables are not the
// benchmark); per-shard counters are read back from the partial reports,
// so steal and reuse rates come from the same records the merge validates.
//
// What the numbers mean: this benchmarks the SHARD LAYER — claim
// distribution, lease traffic, and cross-process overlap — not the host's
// core count. At paper scale a cell is minutes of CPU (15k rows x 100
// repeats); at bench scale it is milliseconds, so raw compute would just
// measure how many cores the box has. Instead each cell is paced by a
// fixed sleep at every repeat checkpoint (the same scheduler hook the
// soak test crashes through), making cell latency dominate compute.
// Paced latency overlaps across processes exactly like paper-scale cell
// work does across machines, so cells/sec scaling 1 -> 4 processes is the
// shard layer's doing and reproduces on any host. Set the pace to 0 to
// time raw compute instead (expect flat walls on few-core machines).
//
// Output: a human summary on stdout and a JSON report (default
// BENCH_suite.json, --out to change). Scale knobs:
//   FAIRCLEAN_BENCH_SUITE_SAMPLE   rows per dataset (default 300)
//   FAIRCLEAN_BENCH_SUITE_ITERS    timed iterations per process count
//                                  (default 3)
//   FAIRCLEAN_BENCH_SUITE_THREADS  suite fan-out width inside each shard
//                                  process (default 1: process count is
//                                  the parallelism lever under test)
//   FAIRCLEAN_BENCH_SUITE_PACE_MS  per-checkpoint cell pacing in
//                                  milliseconds (default 250; 0 disables)

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/env.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/json_lite.h"
#include "obs/log.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"

namespace {

using namespace fairclean;         // NOLINT
using namespace fairclean::sched;  // NOLINT

constexpr const char* kScratchDir = "suite_bench_scratch";
constexpr const char* kFilter = "tables_missing";
constexpr size_t kGridCells = 9;

struct SuiteBenchConfig {
  size_t sample = 300;
  size_t iters = 3;
  size_t threads = 1;
  size_t pace_ms = 250;
};

StudyOptions BenchStudy(const SuiteBenchConfig& config) {
  StudyOptions study;
  study.sample_size = config.sample;
  study.num_repeats = 3;
  study.cv_folds = 3;
  study.seed = 42;
  return study;
}

/// Counters summed across one iteration's partial reports.
struct IterCounters {
  uint64_t produced = 0;
  uint64_t steals = 0;
  uint64_t claim_conflicts = 0;
  uint64_t cache_skips = 0;
};

double CounterOr(const obs::JsonValue& counters, const std::string& name) {
  const obs::JsonValue* value = counters.Find(name);
  if (value == nullptr || !value->is_number()) return 0.0;
  return value->number_value;
}

Result<IterCounters> ReadPartialCounters(const std::string& report,
                                         size_t procs) {
  IterCounters total;
  for (size_t i = 0; i < procs; ++i) {
    ShardSpec shard;
    shard.mode = ShardMode::kClaim;
    shard.index = i;
    shard.count = procs;
    const std::string path =
        SuiteScheduler::PartialReportPath(report, shard);
    FC_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
    obs::JsonValue parsed;
    std::string error;
    if (!obs::JsonValue::Parse(text, &parsed, &error)) {
      return Status::InvalidArgument("malformed partial report " + path +
                                     ": " + error);
    }
    const obs::JsonValue* counters = parsed.Find("counters");
    if (counters == nullptr) {
      return Status::InvalidArgument(path + " has no counters block");
    }
    total.produced += static_cast<uint64_t>(CounterOr(*counters, "produced"));
    total.steals += static_cast<uint64_t>(CounterOr(*counters, "steals"));
    total.claim_conflicts +=
        static_cast<uint64_t>(CounterOr(*counters, "claim_conflicts"));
    total.cache_skips +=
        static_cast<uint64_t>(CounterOr(*counters, "cache_skips"));
  }
  return total;
}

/// One timed iteration: P claim shards over a fresh cache. Returns the
/// fan-out wall-clock in seconds (forks to last exit, merge included).
Result<double> RunIteration(const SuiteBenchConfig& config, size_t procs,
                            const std::string& dir, IterCounters* counters) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string cache = dir + "/cache";
  const std::string report = dir + "/report.json";

  auto start = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (size_t i = 0; i < procs; ++i) {
    pid_t pid = fork();
    if (pid < 0) {
      return Status::Internal(StrFormat("fork failed: %s", strerror(errno)));
    }
    if (pid == 0) {
      int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        dup2(devnull, STDOUT_FILENO);
        close(devnull);
      }
      SuiteOptions options;
      options.study = BenchStudy(config);
      options.cache_dir = cache;
      options.threads = config.threads;
      options.report_path = report;
      options.shard.mode = ShardMode::kClaim;
      options.shard.index = i;
      options.shard.count = procs;
      SuiteScheduler scheduler(options);
      if (config.pace_ms > 0) {
        const auto pace = std::chrono::milliseconds(config.pace_ms);
        scheduler.set_cell_checkpoint_hook(
            [pace](const CellKey&) { std::this_thread::sleep_for(pace); });
      }
      Status status =
          scheduler.RunSuiteShard(PaperSuite(), SuiteFilter::Parse(kFilter));
      if (!status.ok()) {
        std::fprintf(stderr, "shard %zu/%zu failed: %s\n", i + 1, procs,
                     status.ToString().c_str());
      }
      _exit(status.ok() ? 0 : 1);
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int wstatus = 0;
    if (waitpid(pid, &wstatus, 0) != pid || !WIFEXITED(wstatus) ||
        WEXITSTATUS(wstatus) != 0) {
      return Status::Internal(
          StrFormat("shard process %d failed (status %d)", pid, wstatus));
    }
  }
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  FC_ASSIGN_OR_RETURN(*counters, ReadPartialCounters(report, procs));
  if (counters->produced != kGridCells) {
    return Status::Internal(StrFormat(
        "expected %zu produced cells across partials, got %llu", kGridCells,
        static_cast<unsigned long long>(counters->produced)));
  }
  return wall;
}

struct ProcResult {
  bench::BenchStats wall;
  double cells_per_s = 0.0;
  IterCounters counters;  ///< summed over all iterations
};

int Run(int argc, char** argv) {
  obs::InitLogLevelFromEnv(obs::LogLevel::kWarn);
  std::string out_path = "BENCH_suite.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: suite_bench [--out path]\n");
      return 1;
    }
  }

  SuiteBenchConfig config;
  auto count_knob = [](const char* name, size_t fallback) {
    Result<int64_t> value =
        GetEnvCount(name, static_cast<int64_t>(fallback));
    if (!value.ok() || *value < 1) {
      std::fprintf(stderr, "bad %s: %s\n", name,
                   value.ok() ? "must be >= 1"
                              : value.status().ToString().c_str());
      std::exit(1);
    }
    return static_cast<size_t>(*value);
  };
  config.sample = count_knob("FAIRCLEAN_BENCH_SUITE_SAMPLE", config.sample);
  config.iters = count_knob("FAIRCLEAN_BENCH_SUITE_ITERS", config.iters);
  config.threads =
      count_knob("FAIRCLEAN_BENCH_SUITE_THREADS", config.threads);
  {
    Result<int64_t> pace = GetEnvCount("FAIRCLEAN_BENCH_SUITE_PACE_MS",
                                       static_cast<int64_t>(config.pace_ms));
    if (!pace.ok() || *pace < 0) {
      std::fprintf(stderr, "bad FAIRCLEAN_BENCH_SUITE_PACE_MS: %s\n",
                   pace.ok() ? "must be >= 0"
                             : pace.status().ToString().c_str());
      return 1;
    }
    config.pace_ms = static_cast<size_t>(*pace);
  }

  std::printf(
      "suite shard bench: %s grid (%zu cells), sample %zu, %zu iters, "
      "%zu threads/shard, %zu ms checkpoint pace\n",
      kFilter, kGridCells, config.sample, config.iters, config.threads,
      config.pace_ms);

  const std::vector<size_t> proc_counts = {1, 2, 4};
  std::map<size_t, ProcResult> results;
  for (size_t procs : proc_counts) {
    std::vector<double> walls;
    ProcResult result;
    for (size_t iter = 0; iter < config.iters; ++iter) {
      const std::string dir =
          StrFormat("%s/p%zu_i%zu", kScratchDir, procs, iter);
      IterCounters counters;
      Result<double> wall = RunIteration(config, procs, dir, &counters);
      if (!wall.ok()) {
        std::fprintf(stderr, "iteration failed at %zu procs: %s\n", procs,
                     wall.status().ToString().c_str());
        return 1;
      }
      walls.push_back(*wall);
      result.counters.produced += counters.produced;
      result.counters.steals += counters.steals;
      result.counters.claim_conflicts += counters.claim_conflicts;
      result.counters.cache_skips += counters.cache_skips;
    }
    result.wall = bench::StatsFromSamples(walls);
    result.cells_per_s = result.wall.median > 0.0
                             ? static_cast<double>(kGridCells) /
                                   result.wall.median
                             : 0.0;
    results[procs] = result;
    std::printf(
        "  %zu proc(s): median %.3fs p95 %.3fs  %.2f cells/s  "
        "steals %llu conflicts %llu cache_skips %llu\n",
        procs, result.wall.median, result.wall.p95, result.cells_per_s,
        static_cast<unsigned long long>(result.counters.steals),
        static_cast<unsigned long long>(result.counters.claim_conflicts),
        static_cast<unsigned long long>(result.counters.cache_skips));
  }
  std::filesystem::remove_all(kScratchDir);

  const double base = results[1].wall.median;
  std::string procs_json;
  for (size_t procs : proc_counts) {
    const ProcResult& r = results[procs];
    const double cells_total =
        static_cast<double>(kGridCells) * config.iters;
    if (!procs_json.empty()) procs_json += ",";
    procs_json += StrFormat(
        "\"%zu\":{\"wall_s\":%.6f,\"wall_p95_s\":%.6f,"
        "\"cells_per_s\":%.4f,\"speedup\":%.4f,"
        "\"steal_rate\":%.4f,\"claim_conflicts\":%llu,"
        "\"reuse_rate\":%.4f}",
        procs, r.wall.median, r.wall.p95, r.cells_per_s,
        r.wall.median > 0.0 ? base / r.wall.median : 0.0,
        cells_total > 0.0 ? r.counters.steals / cells_total : 0.0,
        static_cast<unsigned long long>(r.counters.claim_conflicts),
        cells_total > 0.0 ? r.counters.cache_skips / cells_total : 0.0);
  }
  std::string json = StrFormat(
      "{\"grid\":\"%s\",\"cells\":%zu,\"sample\":%zu,\"iters\":%zu,"
      "\"threads_per_shard\":%zu,\"pace_ms\":%zu,\"cpus\":%u,"
      "\"procs\":{%s}}\n",
      kFilter, kGridCells, config.sample, config.iters, config.threads,
      config.pace_ms, std::thread::hardware_concurrency(),
      procs_json.c_str());
  Status written = WriteFileAtomic(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
