// Telemetry-plane benchmark (DESIGN.md §14): the costs a scrape and the
// always-on recorders impose on the serving path.
//
// Measured:
//   - scrape_json_us / scrape_prom_us   median latency of one `metrics`
//     op payload render (ToJsonArray / ToPrometheus) over a registry
//     populated like a warm server's (counters, gauges, latency
//     histograms, sliding windows),
//   - flight_on_ns / flight_off_ns      per-event cost of
//     FlightRecorder::Record with the recorder enabled, and of the same
//     call site when disabled (the guard-only path the suite pays when
//     FAIRCLEAN_FLIGHT=off),
//   - span_off_ns / span_flight_ns      per-span cost of a TraceSpan with
//     all capture off vs flight-only capture (the §8 identity runs care
//     about exactly this delta),
//   - window_observe_ns                 one SlidingWindowHistogram
//     observation on the hot path,
//   - window_snapshot_us                one windowed percentile snapshot.
//
// Output: human summary on stdout, JSON report to --out
// (default BENCH_obs.json). All medians of --rounds (default 5) rounds.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"

namespace {

using namespace fairclean;  // NOLINT

constexpr size_t kScrapeRenders = 200;
constexpr size_t kFlightEvents = 1000000;
constexpr size_t kSpans = 200000;
constexpr size_t kWindowObs = 1000000;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Keeps the optimizer from deleting a measured loop.
template <typename T>
void DoNotOptimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

// A registry shaped like a warm advisor server's: lifecycle counters,
// store gauges, latency histograms with observations spread across the
// buckets, and the serve/store sliding windows.
void Populate(obs::MetricsRegistry* registry) {
  for (int i = 0; i < 40; ++i) {
    registry->GetCounter(StrFormat("bench.counter_%02d", i))
        ->Increment(static_cast<uint64_t>(i) * 1000 + 7);
  }
  for (int i = 0; i < 10; ++i) {
    registry->GetGauge(StrFormat("bench.gauge_%02d", i))
        ->Set(0.1 * static_cast<double>(i));
  }
  for (int i = 0; i < 8; ++i) {
    obs::Histogram* histogram = registry->GetHistogram(
        StrFormat("bench.latency_%02d", i),
        obs::MetricsRegistry::DefaultLatencyBounds());
    for (int j = 0; j < 1000; ++j) {
      histogram->Observe(0.0005 * static_cast<double>((j % 200) + 1));
    }
  }
  for (int i = 0; i < 4; ++i) {
    obs::SlidingWindowHistogram* window = registry->GetWindowHistogram(
        StrFormat("bench.window_%02d", i),
        obs::MetricsRegistry::DefaultLatencyBounds(), 60.0);
    for (int j = 0; j < 1000; ++j) {
      window->Observe(0.0005 * static_cast<double>((j % 200) + 1));
    }
  }
}

struct Report {
  double scrape_json_us = 0.0;
  double scrape_prom_us = 0.0;
  double flight_on_ns = 0.0;
  double flight_off_ns = 0.0;
  double span_off_ns = 0.0;
  double span_flight_ns = 0.0;
  double window_observe_ns = 0.0;
  double window_snapshot_us = 0.0;
};

double TimeScrape(const obs::MetricsRegistry& registry, bool prometheus) {
  double start = NowSeconds();
  for (size_t i = 0; i < kScrapeRenders; ++i) {
    std::string payload =
        prometheus ? registry.ToPrometheus() : registry.ToJsonArray();
    DoNotOptimize(payload);
  }
  return (NowSeconds() - start) / static_cast<double>(kScrapeRenders) * 1e6;
}

double TimeFlight() {
  const uint16_t site = obs::FlightRecorder::Site("bench.flight");
  double start = NowSeconds();
  for (size_t i = 0; i < kFlightEvents; ++i) {
    if (obs::FlightEnabled()) {
      obs::FlightRecorder::Record(obs::FlightEventType::kMark, site,
                                  static_cast<uint32_t>(i));
    }
  }
  return (NowSeconds() - start) / static_cast<double>(kFlightEvents) * 1e9;
}

double TimeSpans() {
  double start = NowSeconds();
  for (size_t i = 0; i < kSpans; ++i) {
    obs::TraceSpan span("bench", "span");
    DoNotOptimize(span);
  }
  return (NowSeconds() - start) / static_cast<double>(kSpans) * 1e9;
}

int Run(int argc, char** argv) {
  std::string out_path = "BENCH_obs.json";
  int rounds = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: obs_bench [--out FILE] [--rounds N]\n");
      return 2;
    }
  }
  if (rounds < 1) rounds = 1;

  obs::MetricsRegistry registry;  // local: keeps Global() export clean
  Populate(&registry);

  Report report;
  std::vector<double> json_us, prom_us, on_ns, off_ns, span_off_ns,
      span_flight_ns, obs_ns, snap_us;
  for (int round = 0; round < rounds; ++round) {
    json_us.push_back(TimeScrape(registry, /*prometheus=*/false));
    prom_us.push_back(TimeScrape(registry, /*prometheus=*/true));

    obs::FlightRecorder::Disable();
    off_ns.push_back(TimeFlight());
    span_off_ns.push_back(TimeSpans());
    obs::FlightRecorder::Enable(1 << 16);
    on_ns.push_back(TimeFlight());
    span_flight_ns.push_back(TimeSpans());
    obs::FlightRecorder::Disable();

    obs::SlidingWindowHistogram window(
        obs::MetricsRegistry::DefaultLatencyBounds(), 60.0);
    double start = NowSeconds();
    for (size_t i = 0; i < kWindowObs; ++i) {
      window.ObserveAt(0.0005 * static_cast<double>((i % 200) + 1), 1.0);
    }
    obs_ns.push_back((NowSeconds() - start) /
                     static_cast<double>(kWindowObs) * 1e9);
    start = NowSeconds();
    for (size_t i = 0; i < 1000; ++i) {
      obs::SlidingWindowHistogram::WindowSnapshot snapshot =
          window.SnapshotAt(1.0);
      DoNotOptimize(snapshot);
    }
    snap_us.push_back((NowSeconds() - start) / 1000.0 * 1e6);
  }
  report.scrape_json_us = Median(json_us);
  report.scrape_prom_us = Median(prom_us);
  report.flight_on_ns = Median(on_ns);
  report.flight_off_ns = Median(off_ns);
  report.span_off_ns = Median(span_off_ns);
  report.span_flight_ns = Median(span_flight_ns);
  report.window_observe_ns = Median(obs_ns);
  report.window_snapshot_us = Median(snap_us);

  std::printf("obs bench (%d rounds, medians):\n", rounds);
  std::printf("  scrape json        %10.1f us\n", report.scrape_json_us);
  std::printf("  scrape prometheus  %10.1f us\n", report.scrape_prom_us);
  std::printf("  flight record on   %10.1f ns/event\n", report.flight_on_ns);
  std::printf("  flight record off  %10.1f ns/event\n", report.flight_off_ns);
  std::printf("  span capture-off   %10.1f ns/span\n", report.span_off_ns);
  std::printf("  span flight-only   %10.1f ns/span\n",
              report.span_flight_ns);
  std::printf("  window observe     %10.1f ns/obs\n",
              report.window_observe_ns);
  std::printf("  window snapshot    %10.1f us\n", report.window_snapshot_us);

  std::string json = StrFormat(
      "{\"bench\":\"obs\",\"rounds\":%d,"
      "\"scrape\":{\"renders\":%zu,\"json_us\":%.1f,\"prometheus_us\":%.1f},"
      "\"flight\":{\"events\":%zu,\"on_ns\":%.1f,\"off_ns\":%.1f},"
      "\"span\":{\"spans\":%zu,\"off_ns\":%.1f,\"flight_ns\":%.1f},"
      "\"window\":{\"observations\":%zu,\"observe_ns\":%.1f,"
      "\"snapshot_us\":%.1f}}\n",
      rounds, kScrapeRenders, report.scrape_json_us, report.scrape_prom_us,
      kFlightEvents, report.flight_on_ns, report.flight_off_ns, kSpans,
      report.span_off_ns, report.span_flight_ns, kWindowObs,
      report.window_observe_ns, report.window_snapshot_us);
  std::ofstream out(out_path, std::ios::trunc);
  if (!out || !(out << json)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("report written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
