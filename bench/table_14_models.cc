// Reproduces Table XIV: single-attribute analysis of the impact of
// auto-cleaning on accuracy and fairness broken down by ML model, over all
// (dataset/attribute, error type, cleaning method, fairness metric)
// configurations — 212 per model at the paper's scope.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "core/cleaning.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;        // NOLINT
using namespace fairclean::bench; // NOLINT

struct ModelTally {
  int64_t total = 0;
  int64_t fairness_worse = 0;
  int64_t fairness_better = 0;
  int64_t both_better = 0;
};

int Run() {
  BenchOptions options = BenchOptionsFromEnv();
  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "bad FAIRCLEAN_FAULTS: %s\n",
                 faults.ToString().c_str());
    return 1;
  }
  std::printf("== Table XIV: impact of auto-cleaning per ML model "
              "(single-attribute analysis) ==\n\n");

  std::map<std::string, ModelTally> tallies;
  // One driver across all three scopes so the time budget and diagnostics
  // span the whole bench.
  exec::StudyDriver driver(DriverOptions(options));
  const StudyScope scopes[3] = {MissingScope(), OutlierScope(),
                                MislabelScope()};
  for (const StudyScope& scope : scopes) {
    Result<ScopeResults> results = RunScope(scope, &driver, options);
    if (!results.ok()) {
      return ReportScopeFailure(driver, results.status(), options.cache_dir);
    }
    Result<std::vector<CleaningMethod>> methods =
        CleaningMethodsFor(scope.error_type);
    double alpha = BonferroniAlpha(options.study.alpha, methods->size());

    for (const std::string& model : AllModelNames()) {
      for (const PairSpec& pair : scope.single_pairs) {
        const CleaningExperimentResult& result =
            results->at(pair.dataset + "/" + model);
        for (const auto& [method, series] : result.repaired) {
          for (FairnessMetric metric :
               {FairnessMetric::kPredictiveParity,
                FairnessMetric::kEqualOpportunity}) {
            Result<ImpactOutcome> impact = ComputeImpact(
                result.dirty, series, pair.attribute, metric, alpha);
            if (!impact.ok()) {
              std::fprintf(stderr, "impact failed: %s\n",
                           impact.status().ToString().c_str());
              return 1;
            }
            ModelTally& tally = tallies[model];
            ++tally.total;
            if (impact->fairness == Impact::kWorse) ++tally.fairness_worse;
            if (impact->fairness == Impact::kBetter) ++tally.fairness_better;
            if (impact->fairness == Impact::kBetter &&
                impact->accuracy == Impact::kBetter) {
              ++tally.both_better;
            }
          }
        }
      }
    }
  }

  std::printf("%-10s %-22s %-22s %-26s %s\n", "model", "fairness worse",
              "fairness better", "fairness & acc. better", "configs");
  const struct {
    const char* model;
    double worse, better, both;
  } kPaper[3] = {{"xgboost", 32.1, 17.0, 1.9},
                 {"knn", 31.6, 12.7, 11.3},
                 {"log-reg", 36.3, 21.2, 16.0}};
  for (const auto& paper : kPaper) {
    const ModelTally& tally = tallies[paper.model];
    double total = static_cast<double>(tally.total);
    std::printf(
        "%-10s %5.1f%% (%3lld)        %5.1f%% (%3lld)        %5.1f%% "
        "(%3lld)            %lld\n",
        paper.model,
        total ? 100.0 * tally.fairness_worse / total : 0.0,
        static_cast<long long>(tally.fairness_worse),
        total ? 100.0 * tally.fairness_better / total : 0.0,
        static_cast<long long>(tally.fairness_better),
        total ? 100.0 * tally.both_better / total : 0.0,
        static_cast<long long>(tally.both_better),
        static_cast<long long>(tally.total));
    std::printf("  paper:   %5.1f%%               %5.1f%%               "
                "%5.1f%%                    212\n",
                paper.worse, paper.better, paper.both);
  }

  // Paper's qualitative claims for Table XIV.
  const ModelTally& logreg = tallies["log-reg"];
  const ModelTally& xgb = tallies["xgboost"];
  bool logreg_most_both = logreg.both_better >= xgb.both_better &&
                          logreg.both_better >= tallies["knn"].both_better;
  std::printf(
      "\nshape check: log-reg benefits most from cleaning "
      "(fairness & accuracy better) -> %s\n",
      logreg_most_both ? "MATCH" : "MISMATCH");
  bool all_worse_dominates = true;
  for (const auto& [model, tally] : tallies) {
    if (tally.fairness_worse < tally.fairness_better) {
      all_worse_dominates = false;
    }
  }
  std::printf(
      "shape check: for every model, cleaning worsens fairness more often "
      "than it improves it -> %s\n",
      all_worse_dominates ? "MATCH" : "MISMATCH");
  PrintRunSummary(driver);
  return 0;
}

}  // namespace

int main() { return Run(); }
