// Reproduces Table XIV: single-attribute analysis of the impact of
// auto-cleaning on accuracy and fairness broken down by ML model, over all
// (dataset/attribute, error type, cleaning method, fairness metric)
// configurations — 212 per model at the paper's scope.
//
// Thin view over the suite scheduler's "table_models" unit, whose cells
// span all three error-type scopes and are shared (content-addressed) with
// the per-error-type table benches and tools/run_suite.

#include "bench/bench_util.h"

int main() { return fairclean::bench::RunTableBench("table_models"); }
