#include "bench/bench_util.h"

#include <cstdio>

#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/json_lite.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace fairclean {
namespace bench {

BenchOptions BenchOptionsFromEnv() {
  // Benches historically narrated cache hits / resumes / retries; keep that
  // by defaulting their log level to info (FAIRCLEAN_LOG still overrides).
  obs::InitLogLevelFromEnv(obs::LogLevel::kInfo);
  // Activate FAIRCLEAN_TRACE before the first dataset/span of the bench.
  obs::InitTraceFromEnv();
  return sched::SuiteOptionsFromEnv();
}

Result<GeneratedDataset> BenchDataset(const std::string& name,
                                      const BenchOptions& options) {
  return sched::MakeSuiteDataset(name, options.study.seed);
}

int RunTableBench(const std::string& unit_name) {
  BenchOptions options = BenchOptionsFromEnv();
  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "bad FAIRCLEAN_FAULTS: %s\n",
                 faults.ToString().c_str());
    return 1;
  }

  sched::SuiteSpec spec = sched::PaperSuite();
  const sched::SuiteUnit* unit = nullptr;
  for (const sched::SuiteUnit& candidate : spec.units) {
    if (candidate.name == unit_name) unit = &candidate;
  }
  if (unit == nullptr) {
    std::fprintf(stderr, "unknown suite unit: %s\n", unit_name.c_str());
    return 1;
  }

  sched::SuiteScheduler scheduler(options);
  Status status = scheduler.RunUnit(*unit);
  if (!status.ok()) return scheduler.ReportFailure(status);
  // Figure benches never printed run diagnostics; table benches always did.
  if (unit->kind != sched::SuiteUnit::Kind::kFigure) {
    scheduler.PrintRunSummary();
  }
  return 0;
}

Status WriteBenchPerfJson(const std::string& path,
                          const std::map<std::string, double>& op_seconds,
                          size_t threads, double speedup) {
  std::string body = "{\"ops\":{";
  bool first = true;
  for (const auto& [name, seconds] : op_seconds) {
    body += StrFormat("%s\"%s\":%.9g", first ? "" : ",",
                      obs::JsonEscape(name).c_str(), seconds);
    first = false;
  }
  body += StrFormat("},\"threads\":%zu,\"speedup\":%.6g}\n", threads,
                    speedup);
  return WriteFileAtomic(path, body);
}

}  // namespace bench
}  // namespace fairclean
