#include "bench/bench_util.h"

#include <cstdio>
#include <filesystem>
#include <set>

#include "common/env.h"
#include "common/strings.h"
#include "core/cleaning.h"
#include "stats/tests.h"

namespace fairclean {
namespace bench {

namespace {

constexpr FairnessMetric kAllMetrics[] = {
    FairnessMetric::kPredictiveParity,
    FairnessMetric::kEqualOpportunity,
    FairnessMetric::kDemographicParity,
    FairnessMetric::kFalsePositiveRateParity,
    FairnessMetric::kAccuracyParity,
};

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string CachePath(const std::string& dataset,
                      const std::string& error_type, const std::string& model,
                      const BenchOptions& options) {
  return StrFormat("%s/%s_%s_%s_s%llu_n%zu_r%zu_f%zu.json",
                   options.cache_dir.c_str(), dataset.c_str(),
                   error_type.c_str(), model.c_str(),
                   static_cast<unsigned long long>(options.study.seed),
                   options.study.sample_size, options.study.num_repeats,
                   options.study.cv_folds);
}

// Reassembles ScoreSeries from the flat records of a cached run. Returns an
// error if any expected key is absent (stale/partial cache -> rerun).
Result<CleaningExperimentResult> ReconstructFromRecords(
    const ResultStore& records, const GeneratedDataset& dataset,
    const std::string& error_type, const std::string& model,
    const StudyOptions& study) {
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(error_type));
  CleaningExperimentResult result;
  result.dataset = dataset.spec.name;
  result.error_type = error_type;
  result.model = model;
  result.groups = GroupDefinitionsFor(dataset.spec);
  result.records = records;

  std::vector<std::string> versions = {"dirty"};
  for (const CleaningMethod& method : methods) {
    versions.push_back(method.Name());
  }
  for (const std::string& version : versions) {
    ScoreSeries* series = version == "dirty"
                              ? &result.dirty
                              : &result.repaired[version];
    for (size_t repeat = 0; repeat < study.num_repeats; ++repeat) {
      std::string prefix =
          StrFormat("%s/%s/%s/%s/r%zu", dataset.spec.name.c_str(),
                    error_type.c_str(), version.c_str(), model.c_str(),
                    repeat);
      FC_ASSIGN_OR_RETURN(double accuracy,
                          records.Get(MetricKey({prefix, "test_acc"})));
      FC_ASSIGN_OR_RETURN(double f1,
                          records.Get(MetricKey({prefix, "test_f1"})));
      series->accuracy.push_back(accuracy);
      series->f1.push_back(f1);
      for (const GroupDefinition& group : result.groups) {
        GroupConfusion confusion;
        const struct {
          const char* suffix;
          ConfusionMatrix* cm;
        } sides[2] = {{"priv", &confusion.privileged},
                      {"dis", &confusion.disadvantaged}};
        for (const auto& side : sides) {
          std::string base = group.key + "_" + side.suffix;
          FC_ASSIGN_OR_RETURN(double tn,
                              records.Get(MetricKey({prefix, base, "tn"})));
          FC_ASSIGN_OR_RETURN(double fp,
                              records.Get(MetricKey({prefix, base, "fp"})));
          FC_ASSIGN_OR_RETURN(double fn,
                              records.Get(MetricKey({prefix, base, "fn"})));
          FC_ASSIGN_OR_RETURN(double tp,
                              records.Get(MetricKey({prefix, base, "tp"})));
          side.cm->tn = static_cast<int64_t>(tn);
          side.cm->fp = static_cast<int64_t>(fp);
          side.cm->fn = static_cast<int64_t>(fn);
          side.cm->tp = static_cast<int64_t>(tp);
        }
        for (FairnessMetric metric : kAllMetrics) {
          series->unfairness[UnfairnessKey(group.key, metric)].push_back(
              FairnessGap(metric, confusion));
        }
      }
    }
  }
  return result;
}

}  // namespace

std::vector<std::string> StudyScope::Datasets() const {
  std::set<std::string> names;
  for (const PairSpec& pair : single_pairs) names.insert(pair.dataset);
  for (const std::string& name : intersectional_datasets) names.insert(name);
  return std::vector<std::string>(names.begin(), names.end());
}

StudyScope MissingScope() {
  StudyScope scope;
  scope.error_type = "missing_values";
  scope.single_pairs = {{"adult", "sex"},  {"adult", "race"},
                        {"folk", "sex"},   {"folk", "race"},
                        {"german", "sex"}, {"german", "age"}};
  scope.intersectional_datasets = {"adult", "folk", "german"};
  return scope;
}

StudyScope OutlierScope() {
  StudyScope scope;
  scope.error_type = "outliers";
  scope.single_pairs = {{"adult", "sex"}, {"adult", "race"},
                        {"folk", "sex"},  {"folk", "race"},
                        {"credit", "age"}, {"heart", "sex"},
                        {"heart", "age"}};
  scope.intersectional_datasets = {"adult", "folk", "german", "heart"};
  return scope;
}

StudyScope MislabelScope() {
  StudyScope scope = OutlierScope();
  scope.error_type = "mislabels";
  return scope;
}

BenchOptions BenchOptionsFromEnv() {
  BenchOptions options;
  options.study.sample_size =
      static_cast<size_t>(GetEnvInt64("FAIRCLEAN_SAMPLE", 3500));
  options.study.num_repeats =
      static_cast<size_t>(GetEnvInt64("FAIRCLEAN_REPEATS", 16));
  options.study.cv_folds =
      static_cast<size_t>(GetEnvInt64("FAIRCLEAN_FOLDS", 3));
  // A larger holdout than the library default stabilizes the group-wise
  // precision/recall estimates that the fairness metrics compare.
  options.study.test_fraction = 0.3;
  options.study.seed =
      static_cast<uint64_t>(GetEnvInt64("FAIRCLEAN_SEED", 42));
  options.cache_dir = GetEnvString("FAIRCLEAN_CACHE_DIR", "fairclean_cache");
  return options;
}

Result<GeneratedDataset> BenchDataset(const std::string& name,
                                      const BenchOptions& options) {
  // Dataset synthesis is decoupled from the runner's per-repeat seeds but
  // still derives from the global bench seed.
  Rng rng(options.study.seed * 0x9e3779b97f4a7c15ULL + Fnv1a(name));
  return MakeDataset(name, 0, &rng);
}

Result<CleaningExperimentResult> RunOrLoadExperiment(
    const GeneratedDataset& dataset, const std::string& error_type,
    const std::string& model, const BenchOptions& options) {
  std::string path;
  if (!options.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    path = CachePath(dataset.spec.name, error_type, model, options);
    Result<ResultStore> cached = ResultStore::LoadFromFile(path);
    if (cached.ok()) {
      Result<CleaningExperimentResult> reconstructed = ReconstructFromRecords(
          *cached, dataset, error_type, model, options.study);
      if (reconstructed.ok()) {
        if (options.verbose) {
          std::fprintf(stderr, "[cache] %s/%s/%s\n",
                       dataset.spec.name.c_str(), error_type.c_str(),
                       model.c_str());
        }
        return reconstructed;
      }
    }
  }

  if (options.verbose) {
    std::fprintf(stderr, "[run  ] %s/%s/%s ...\n", dataset.spec.name.c_str(),
                 error_type.c_str(), model.c_str());
  }
  FC_ASSIGN_OR_RETURN(TunedModelFamily family, ModelFamilyByName(model));
  FC_ASSIGN_OR_RETURN(
      CleaningExperimentResult result,
      RunCleaningExperiment(dataset, error_type, family, options.study));
  if (!path.empty()) {
    Status saved = result.records.SaveToFile(path);
    if (!saved.ok() && options.verbose) {
      std::fprintf(stderr, "[warn ] cache write failed: %s\n",
                   saved.ToString().c_str());
    }
  }
  return result;
}

Result<ScopeResults> RunScope(const StudyScope& scope,
                              const BenchOptions& options) {
  ScopeResults results;
  for (const std::string& name : scope.Datasets()) {
    FC_ASSIGN_OR_RETURN(GeneratedDataset dataset,
                        BenchDataset(name, options));
    for (const std::string& model : AllModelNames()) {
      FC_ASSIGN_OR_RETURN(
          CleaningExperimentResult result,
          RunOrLoadExperiment(dataset, scope.error_type, model, options));
      results.emplace(name + "/" + model, std::move(result));
    }
  }
  return results;
}

Result<ImpactTable> AggregateImpactTable(const ScopeResults& results,
                                         const StudyScope& scope,
                                         bool intersectional,
                                         FairnessMetric metric,
                                         const BenchOptions& options) {
  ImpactTable table;
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(scope.error_type));
  double alpha = BonferroniAlpha(options.study.alpha, methods.size());

  auto add_configurations = [&](const CleaningExperimentResult& result,
                                const std::string& group_key) -> Status {
    for (const auto& [method, series] : result.repaired) {
      FC_ASSIGN_OR_RETURN(
          ImpactOutcome impact,
          ComputeImpact(result.dirty, series, group_key, metric, alpha));
      table.Add(impact.fairness, impact.accuracy);
    }
    return Status::OK();
  };

  for (const std::string& model : AllModelNames()) {
    if (!intersectional) {
      for (const PairSpec& pair : scope.single_pairs) {
        auto it = results.find(pair.dataset + "/" + model);
        if (it == results.end()) {
          return Status::NotFound("no results for " + pair.dataset + "/" +
                                  model);
        }
        FC_RETURN_IF_ERROR(add_configurations(it->second, pair.attribute));
      }
    } else {
      for (const std::string& dataset : scope.intersectional_datasets) {
        auto it = results.find(dataset + "/" + model);
        if (it == results.end()) {
          return Status::NotFound("no results for " + dataset + "/" + model);
        }
        const CleaningExperimentResult& result = it->second;
        std::string group_key;
        for (const GroupDefinition& group : result.groups) {
          if (group.intersectional) group_key = group.key;
        }
        if (group_key.empty()) {
          return Status::InvalidArgument(
              "dataset has no intersectional group: " + dataset);
        }
        FC_RETURN_IF_ERROR(add_configurations(result, group_key));
      }
    }
  }
  return table;
}

void PrintTableWithReference(const ImpactTable& measured,
                             const PaperTable& reference,
                             const std::string& title) {
  std::printf("%s\n", measured.Format(title).c_str());
  std::printf("paper reference (%s):\n", reference.label);
  const char* row_labels[3] = {"fairness worse", "fairness insign.",
                               "fairness better"};
  for (size_t r = 0; r < 3; ++r) {
    std::printf("%-22s |", row_labels[r]);
    for (size_t c = 0; c < 3; ++c) {
      std::printf(" %5.1f%%        ", reference.cells[r][c]);
    }
    std::printf("\n");
  }

  // Qualitative shape checks against the paper.
  double paper_worse = reference.cells[0][0] + reference.cells[0][1] +
                       reference.cells[0][2];
  double paper_better = reference.cells[2][0] + reference.cells[2][1] +
                        reference.cells[2][2];
  int64_t total = measured.Total();
  double measured_worse =
      total ? 100.0 * measured.RowTotal(Impact::kWorse) / total : 0.0;
  double measured_better =
      total ? 100.0 * measured.RowTotal(Impact::kBetter) / total : 0.0;
  bool paper_direction = paper_worse > paper_better;
  bool measured_direction = measured_worse > measured_better;
  std::printf(
      "shape check: fairness worse vs better — paper %.1f%% / %.1f%% (%s), "
      "measured %.1f%% / %.1f%% (%s) -> %s\n\n",
      paper_worse, paper_better,
      paper_direction ? "worse dominates" : "better dominates",
      measured_worse, measured_better,
      measured_direction ? "worse dominates" : "better dominates",
      paper_direction == measured_direction ? "MATCH" : "MISMATCH");
}

int RunTableBench(const StudyScope& scope, const PaperTable references[4],
                  const char* heading) {
  BenchOptions options = BenchOptionsFromEnv();
  std::printf("== %s ==\n", heading);
  std::printf(
      "scale: sample=%zu repeats=%zu folds=%zu seed=%llu (override via "
      "FAIRCLEAN_SAMPLE / FAIRCLEAN_REPEATS / FAIRCLEAN_FOLDS / "
      "FAIRCLEAN_SEED)\n\n",
      options.study.sample_size, options.study.num_repeats,
      options.study.cv_folds,
      static_cast<unsigned long long>(options.study.seed));

  Result<ScopeResults> results = RunScope(scope, options);
  if (!results.ok()) {
    std::fprintf(stderr, "scope run failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  const struct {
    bool intersectional;
    FairnessMetric metric;
    const char* grouping;
  } kTables[4] = {
      {false, FairnessMetric::kPredictiveParity, "single-attribute"},
      {false, FairnessMetric::kEqualOpportunity, "single-attribute"},
      {true, FairnessMetric::kPredictiveParity, "intersectional"},
      {true, FairnessMetric::kEqualOpportunity, "intersectional"},
  };
  for (size_t i = 0; i < 4; ++i) {
    Result<ImpactTable> table =
        AggregateImpactTable(*results, scope, kTables[i].intersectional,
                             kTables[i].metric, options);
    if (!table.ok()) {
      std::fprintf(stderr, "aggregation failed: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
    std::string title = StrFormat(
        "Impact of auto-cleaning %s for %s groups, %s as fairness metric",
        scope.error_type.c_str(), kTables[i].grouping,
        FairnessMetricName(kTables[i].metric));
    PrintTableWithReference(*table, references[i], title);
  }
  return 0;
}

}  // namespace bench
}  // namespace fairclean
