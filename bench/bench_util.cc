#include "bench/bench_util.h"

#include <cstdio>
#include <set>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/safe_io.h"
#include "common/strings.h"
#include "core/cleaning.h"
#include "obs/json_lite.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/tests.h"

namespace fairclean {
namespace bench {

namespace {

// EX_TEMPFAIL: the run stopped at its time budget with resumable state.
constexpr int kExitResumable = 75;

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::vector<std::string> StudyScope::Datasets() const {
  std::set<std::string> names;
  for (const PairSpec& pair : single_pairs) names.insert(pair.dataset);
  for (const std::string& name : intersectional_datasets) names.insert(name);
  return std::vector<std::string>(names.begin(), names.end());
}

StudyScope MissingScope() {
  StudyScope scope;
  scope.error_type = "missing_values";
  scope.single_pairs = {{"adult", "sex"},  {"adult", "race"},
                        {"folk", "sex"},   {"folk", "race"},
                        {"german", "sex"}, {"german", "age"}};
  scope.intersectional_datasets = {"adult", "folk", "german"};
  return scope;
}

StudyScope OutlierScope() {
  StudyScope scope;
  scope.error_type = "outliers";
  scope.single_pairs = {{"adult", "sex"}, {"adult", "race"},
                        {"folk", "sex"},  {"folk", "race"},
                        {"credit", "age"}, {"heart", "sex"},
                        {"heart", "age"}};
  scope.intersectional_datasets = {"adult", "folk", "german", "heart"};
  return scope;
}

StudyScope MislabelScope() {
  StudyScope scope = OutlierScope();
  scope.error_type = "mislabels";
  return scope;
}

BenchOptions BenchOptionsFromEnv() {
  // Benches historically narrated cache hits / resumes / retries; keep that
  // by defaulting their log level to info (FAIRCLEAN_LOG still overrides).
  obs::InitLogLevelFromEnv(obs::LogLevel::kInfo);
  // Activate FAIRCLEAN_TRACE before the first dataset/span of the bench.
  obs::InitTraceFromEnv();
  BenchOptions options;
  options.study.sample_size =
      static_cast<size_t>(GetEnvInt64("FAIRCLEAN_SAMPLE", 3500));
  options.study.num_repeats =
      static_cast<size_t>(GetEnvInt64("FAIRCLEAN_REPEATS", 16));
  options.study.cv_folds =
      static_cast<size_t>(GetEnvInt64("FAIRCLEAN_FOLDS", 3));
  // A larger holdout than the library default stabilizes the group-wise
  // precision/recall estimates that the fairness metrics compare.
  options.study.test_fraction = 0.3;
  options.study.seed =
      static_cast<uint64_t>(GetEnvInt64("FAIRCLEAN_SEED", 42));
  options.cache_dir = GetEnvString("FAIRCLEAN_CACHE_DIR", "fairclean_cache");
  options.max_retries = static_cast<size_t>(
      GetEnvInt64("FAIRCLEAN_MAX_RETRIES",
                  static_cast<int64_t>(options.max_retries)));
  options.time_budget_s =
      GetEnvDouble("FAIRCLEAN_TIME_BUDGET_S", options.time_budget_s);
  options.threads = static_cast<size_t>(GetEnvInt64("FAIRCLEAN_THREADS", 0));
  return options;
}

exec::StudyDriverOptions DriverOptions(const BenchOptions& options) {
  exec::StudyDriverOptions driver_options;
  driver_options.study = options.study;
  driver_options.cache_dir = options.cache_dir;
  driver_options.max_retries = options.max_retries;
  driver_options.time_budget_s = options.time_budget_s;
  driver_options.threads = options.threads;
  return driver_options;
}

Result<GeneratedDataset> BenchDataset(const std::string& name,
                                      const BenchOptions& options) {
  // Dataset synthesis is decoupled from the runner's per-repeat seeds but
  // still derives from the global bench seed.
  Rng rng(options.study.seed * 0x9e3779b97f4a7c15ULL + Fnv1a(name));
  return MakeDataset(name, 0, &rng);
}

Result<CleaningExperimentResult> RunOrLoadExperiment(
    const GeneratedDataset& dataset, const std::string& error_type,
    const std::string& model, const BenchOptions& options) {
  exec::StudyDriver driver(DriverOptions(options));
  return driver.RunOrLoad(dataset, error_type, model);
}

Result<ScopeResults> RunScope(const StudyScope& scope,
                              exec::StudyDriver* driver,
                              const BenchOptions& options) {
  ScopeResults results;
  for (const std::string& name : scope.Datasets()) {
    FC_ASSIGN_OR_RETURN(GeneratedDataset dataset,
                        BenchDataset(name, options));
    for (const std::string& model : AllModelNames()) {
      FC_ASSIGN_OR_RETURN(
          CleaningExperimentResult result,
          driver->RunOrLoad(dataset, scope.error_type, model));
      results.emplace(name + "/" + model, std::move(result));
    }
  }
  return results;
}

Result<ScopeResults> RunScope(const StudyScope& scope,
                              const BenchOptions& options) {
  exec::StudyDriver driver(DriverOptions(options));
  return RunScope(scope, &driver, options);
}

Result<ImpactTable> AggregateImpactTable(const ScopeResults& results,
                                         const StudyScope& scope,
                                         bool intersectional,
                                         FairnessMetric metric,
                                         const BenchOptions& options) {
  ImpactTable table;
  FC_ASSIGN_OR_RETURN(std::vector<CleaningMethod> methods,
                      CleaningMethodsFor(scope.error_type));
  double alpha = BonferroniAlpha(options.study.alpha, methods.size());

  auto add_configurations = [&](const CleaningExperimentResult& result,
                                const std::string& group_key) -> Status {
    for (const auto& [method, series] : result.repaired) {
      FC_ASSIGN_OR_RETURN(
          ImpactOutcome impact,
          ComputeImpact(result.dirty, series, group_key, metric, alpha));
      table.Add(impact.fairness, impact.accuracy);
    }
    return Status::OK();
  };

  for (const std::string& model : AllModelNames()) {
    if (!intersectional) {
      for (const PairSpec& pair : scope.single_pairs) {
        auto it = results.find(pair.dataset + "/" + model);
        if (it == results.end()) {
          return Status::NotFound("no results for " + pair.dataset + "/" +
                                  model);
        }
        FC_RETURN_IF_ERROR(add_configurations(it->second, pair.attribute));
      }
    } else {
      for (const std::string& dataset : scope.intersectional_datasets) {
        auto it = results.find(dataset + "/" + model);
        if (it == results.end()) {
          return Status::NotFound("no results for " + dataset + "/" + model);
        }
        const CleaningExperimentResult& result = it->second;
        std::string group_key;
        for (const GroupDefinition& group : result.groups) {
          if (group.intersectional) group_key = group.key;
        }
        if (group_key.empty()) {
          return Status::InvalidArgument(
              "dataset has no intersectional group: " + dataset);
        }
        FC_RETURN_IF_ERROR(add_configurations(result, group_key));
      }
    }
  }
  return table;
}

void PrintTableWithReference(const ImpactTable& measured,
                             const PaperTable& reference,
                             const std::string& title) {
  std::printf("%s\n", measured.Format(title).c_str());
  std::printf("paper reference (%s):\n", reference.label);
  const char* row_labels[3] = {"fairness worse", "fairness insign.",
                               "fairness better"};
  for (size_t r = 0; r < 3; ++r) {
    std::printf("%-22s |", row_labels[r]);
    for (size_t c = 0; c < 3; ++c) {
      std::printf(" %5.1f%%        ", reference.cells[r][c]);
    }
    std::printf("\n");
  }

  // Qualitative shape checks against the paper.
  double paper_worse = reference.cells[0][0] + reference.cells[0][1] +
                       reference.cells[0][2];
  double paper_better = reference.cells[2][0] + reference.cells[2][1] +
                        reference.cells[2][2];
  int64_t total = measured.Total();
  double measured_worse =
      total ? 100.0 * measured.RowTotal(Impact::kWorse) / total : 0.0;
  double measured_better =
      total ? 100.0 * measured.RowTotal(Impact::kBetter) / total : 0.0;
  bool paper_direction = paper_worse > paper_better;
  bool measured_direction = measured_worse > measured_better;
  std::printf(
      "shape check: fairness worse vs better — paper %.1f%% / %.1f%% (%s), "
      "measured %.1f%% / %.1f%% (%s) -> %s\n\n",
      paper_worse, paper_better,
      paper_direction ? "worse dominates" : "better dominates",
      measured_worse, measured_better,
      measured_direction ? "worse dominates" : "better dominates",
      paper_direction == measured_direction ? "MATCH" : "MISMATCH");
}

int RunTableBench(const StudyScope& scope, const PaperTable references[4],
                  const char* heading) {
  BenchOptions options = BenchOptionsFromEnv();
  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "bad FAIRCLEAN_FAULTS: %s\n",
                 faults.ToString().c_str());
    return 1;
  }
  exec::StudyDriver driver(DriverOptions(options));
  std::printf("== %s ==\n", heading);
  std::printf(
      "scale: sample=%zu repeats=%zu folds=%zu seed=%llu threads=%zu "
      "(override via FAIRCLEAN_SAMPLE / FAIRCLEAN_REPEATS / FAIRCLEAN_FOLDS "
      "/ FAIRCLEAN_SEED / FAIRCLEAN_THREADS)\n\n",
      options.study.sample_size, options.study.num_repeats,
      options.study.cv_folds,
      static_cast<unsigned long long>(options.study.seed),
      driver.diagnostics().threads);
  Result<ScopeResults> results = RunScope(scope, &driver, options);
  if (!results.ok()) {
    return ReportScopeFailure(driver, results.status(), options.cache_dir);
  }

  const struct {
    bool intersectional;
    FairnessMetric metric;
    const char* grouping;
  } kTables[4] = {
      {false, FairnessMetric::kPredictiveParity, "single-attribute"},
      {false, FairnessMetric::kEqualOpportunity, "single-attribute"},
      {true, FairnessMetric::kPredictiveParity, "intersectional"},
      {true, FairnessMetric::kEqualOpportunity, "intersectional"},
  };
  for (size_t i = 0; i < 4; ++i) {
    Result<ImpactTable> table =
        AggregateImpactTable(*results, scope, kTables[i].intersectional,
                             kTables[i].metric, options);
    if (!table.ok()) {
      std::fprintf(stderr, "aggregation failed: %s\n",
                   table.status().ToString().c_str());
      return 1;
    }
    std::string title = StrFormat(
        "Impact of auto-cleaning %s for %s groups, %s as fairness metric",
        scope.error_type.c_str(), kTables[i].grouping,
        FairnessMetricName(kTables[i].metric));
    PrintTableWithReference(*table, references[i], title);
  }
  PrintRunSummary(driver);
  return 0;
}

void PrintRunSummary(const exec::StudyDriver& driver) {
  std::printf("%s", driver.diagnostics().Format().c_str());
  // At info level also show the process-wide instruments (io/csv byte
  // counters, queue-wait histogram, fault fires) the diagnostics snapshot
  // does not cover.
  if (obs::LogEnabled(obs::LogLevel::kInfo)) {
    std::printf("process metrics:\n%s",
                obs::MetricsRegistry::Global().FormatSummary().c_str());
  }
}

int ReportScopeFailure(const exec::StudyDriver& driver, const Status& status,
                       const std::string& cache_dir) {
  std::fprintf(stderr, "scope run failed: %s\n", status.ToString().c_str());
  std::fprintf(stderr, "%s", driver.diagnostics().Format().c_str());
  if (status.code() == StatusCode::kDeadlineExceeded) {
    std::fprintf(stderr,
                 "completed repeats are checkpointed in %s — re-run to "
                 "resume where this run stopped\n",
                 cache_dir.c_str());
    return kExitResumable;
  }
  return 1;
}

Status WriteBenchPerfJson(const std::string& path,
                          const std::map<std::string, double>& op_seconds,
                          size_t threads, double speedup) {
  std::string body = "{\"ops\":{";
  bool first = true;
  for (const auto& [name, seconds] : op_seconds) {
    body += StrFormat("%s\"%s\":%.9g", first ? "" : ",",
                      obs::JsonEscape(name).c_str(), seconds);
    first = false;
  }
  body += StrFormat("},\"threads\":%zu,\"speedup\":%.6g}\n", threads,
                    speedup);
  return WriteFileAtomic(path, body);
}

}  // namespace bench
}  // namespace fairclean
