// Reproduces the Section VI deep dive:
//  (1) the 40 cases (fairness metric x dataset/attribute x error type) and
//      how many admit a cleaning technique that does not worsen / improves
//      fairness / improves both fairness and accuracy (paper: 37 / 23 / 17
//      of 40);
//  (2) which categorical imputation wins for fairness (paper: dummy, 27 vs
//      22 fairness improvements);
//  (3) which outlier detector hurts fairness most (paper: iqr 50%, if
//      33.3%, sd 25% of cases negative);
//  (4) best-performing model per dataset by dirty-baseline accuracy
//      (paper: log-reg, with xgboost ahead in a few dataset/error combos).
//
// Runs its three scopes through one suite scheduler, so datasets and
// experiment cells are content-addressed artifacts shared across scopes
// (and with any cached run of the table benches or tools/run_suite).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "core/cleaning.h"
#include "stats/descriptive.h"
#include "stats/tests.h"

namespace {

using namespace fairclean;        // NOLINT
using namespace fairclean::bench; // NOLINT

struct CaseOutcome {
  bool has_non_worsening = false;
  bool has_improving = false;
  bool has_both_improving = false;
};

int Run() {
  BenchOptions options = BenchOptionsFromEnv();
  Status faults = FaultInjector::Global().ConfigureFromEnv();
  if (!faults.ok()) {
    std::fprintf(stderr, "bad FAIRCLEAN_FAULTS: %s\n",
                 faults.ToString().c_str());
    return 1;
  }
  std::printf("== Section VI deep dive ==\n\n");

  // case key: "<metric>/<dataset>/<attribute>/<error>".
  std::map<std::string, CaseOutcome> cases;
  // categorical imputation -> fairness-better count (missing values only).
  std::map<std::string, int64_t> categorical_wins;
  // outlier detector -> {negative fairness impacts, total}.
  std::map<std::string, std::pair<int64_t, int64_t>> detector_negative;
  // dataset/model -> mean dirty accuracy (averaged over error types).
  std::map<std::string, std::vector<double>> dirty_accuracy;

  // One scheduler across all three scopes so the time budget, diagnostics,
  // and shared artifacts span the whole bench.
  sched::SuiteScheduler scheduler(options);
  const StudyScope scopes[3] = {MissingScope(), OutlierScope(),
                                MislabelScope()};
  for (const StudyScope& scope : scopes) {
    Result<ScopeResults> results = scheduler.RunScopeCells(scope);
    if (!results.ok()) {
      return scheduler.ReportFailure(results.status());
    }
    Result<std::vector<CleaningMethod>> methods =
        CleaningMethodsFor(scope.error_type);
    double alpha = BonferroniAlpha(options.study.alpha, methods->size());

    for (const auto& [key, artifact] : *results) {
      Result<double> mean_acc = Mean(artifact->result.dirty.accuracy);
      if (mean_acc.ok()) dirty_accuracy[key].push_back(*mean_acc);
    }

    for (const std::string& model : AllModelNames()) {
      for (const PairSpec& pair : scope.single_pairs) {
        const CleaningExperimentResult& result =
            results->at(pair.dataset + "/" + model)->result;
        for (const CleaningMethod& method : *methods) {
          const ScoreSeries& series = result.repaired.at(method.Name());
          for (FairnessMetric metric :
               {FairnessMetric::kPredictiveParity,
                FairnessMetric::kEqualOpportunity}) {
            Result<ImpactOutcome> impact = ComputeImpact(
                result.dirty, series, pair.attribute, metric, alpha);
            if (!impact.ok()) continue;
            std::string case_key =
                StrFormat("%s/%s/%s/%s", FairnessMetricShortName(metric),
                          pair.dataset.c_str(), pair.attribute.c_str(),
                          scope.error_type.c_str());
            CaseOutcome& outcome = cases[case_key];
            if (impact->fairness != Impact::kWorse) {
              outcome.has_non_worsening = true;
            }
            if (impact->fairness == Impact::kBetter) {
              outcome.has_improving = true;
              if (scope.error_type == "missing_values") {
                ++categorical_wins[CategoricalImputeName(
                    method.categorical_impute)];
              }
            }
            if (impact->fairness == Impact::kBetter &&
                impact->accuracy == Impact::kBetter) {
              outcome.has_both_improving = true;
            }
            if (scope.error_type == "outliers") {
              auto& [negative, total] = detector_negative[method.detector];
              ++total;
              if (impact->fairness == Impact::kWorse) ++negative;
            }
          }
        }
      }
    }
  }

  size_t non_worsening = 0;
  size_t improving = 0;
  size_t both = 0;
  for (const auto& [key, outcome] : cases) {
    if (outcome.has_non_worsening) ++non_worsening;
    if (outcome.has_improving) ++improving;
    if (outcome.has_both_improving) ++both;
  }
  std::printf("cases (metric x dataset/attribute x error type): %zu "
              "(paper: 40)\n",
              cases.size());
  std::printf("  with a technique that does not worsen fairness: %zu "
              "(paper: 37 of 40)\n",
              non_worsening);
  std::printf("  with a technique that improves fairness:        %zu "
              "(paper: 23 of 40)\n",
              improving);
  std::printf("  with a technique improving fairness & accuracy: %zu "
              "(paper: 17 of 40)\n\n",
              both);

  std::printf("categorical imputation producing fairness improvements "
              "(missing values):\n");
  for (const auto& [name, wins] : categorical_wins) {
    std::printf("  %-6s: %lld improvements\n", name.c_str(),
                static_cast<long long>(wins));
  }
  std::printf("  (paper: dummy imputation most beneficial, 27 vs 22)\n\n");

  std::printf("outlier detectors: fraction of configurations with negative "
              "fairness impact:\n");
  for (const auto& [detector, counts] : detector_negative) {
    double fraction =
        counts.second
            ? 100.0 * static_cast<double>(counts.first) / counts.second
            : 0.0;
    std::printf("  %-13s: %5.1f%% (%lld of %lld)\n", detector.c_str(),
                fraction, static_cast<long long>(counts.first),
                static_cast<long long>(counts.second));
  }
  std::printf("  (paper: iqr 50%%, if 33.3%%, sd 25%%)\n\n");

  std::printf("mean dirty-baseline test accuracy per dataset/model:\n");
  for (const auto& [key, values] : dirty_accuracy) {
    Result<double> mean = Mean(values);
    std::printf("  %-16s: %.4f\n", key.c_str(), mean.ok() ? *mean : 0.0);
  }
  std::printf("  (paper: log-reg provides the highest accuracy over all "
              "tasks, outperformed by xgboost only for outliers on "
              "folk/heart and missing values on adult/folk)\n");
  scheduler.PrintRunSummary();
  return 0;
}

}  // namespace

int main() { return Run(); }
