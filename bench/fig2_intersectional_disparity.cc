// Reproduces Figure 2: intersectional analysis of disparate proportions of
// tuples flagged by the error-detection strategies for the intersectionally
// privileged vs disadvantaged groups (credit has no second demographic
// attribute and is excluded, as in the paper).
//
// Thin view over the suite scheduler's "fig2" unit; the per-dataset
// disparity analyses are content-addressed artifacts shared with
// tools/run_suite.

#include "bench/bench_util.h"

int main() { return fairclean::bench::RunTableBench("fig2"); }
