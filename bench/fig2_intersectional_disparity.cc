// Reproduces Figure 2: intersectional analysis of disparate proportions of
// tuples flagged by the error-detection strategies for the intersectionally
// privileged vs disadvantaged groups (credit has no second demographic
// attribute and is excluded, as in the paper).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/disparity.h"

namespace {

using namespace fairclean;        // NOLINT
using namespace fairclean::bench; // NOLINT

int Run() {
  BenchOptions options = BenchOptionsFromEnv();
  std::printf(
      "== Figure 2: intersectional disparity of error-detector flag rates "
      "==\n\n");

  size_t missing_cases = 0;
  size_t missing_dis_higher = 0;

  for (const std::string& name : AllDatasetNames()) {
    Result<GeneratedDataset> dataset = BenchDataset(name, options);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset %s failed: %s\n", name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    if (!dataset->spec.intersectional) {
      std::printf("%s: no intersectional definition (skipped, as in the "
                  "paper)\n\n",
                  name.c_str());
      continue;
    }
    DisparityOptions disparity_options;
    Rng rng(options.study.seed + 19);
    Result<std::vector<DisparityRow>> rows = AnalyzeDisparities(
        *dataset, /*intersectional=*/true, disparity_options, &rng);
    if (!rows.ok()) {
      std::fprintf(stderr, "analysis failed for %s: %s\n", name.c_str(),
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", FormatDisparityTable(*rows).c_str());
    std::printf("\n");
    for (const DisparityRow& row : *rows) {
      if (row.detector == "missing_values") {
        ++missing_cases;
        if (row.DisadvantagedFraction() > row.PrivilegedFraction()) {
          ++missing_dis_higher;
        }
      }
    }
  }

  std::printf("== summary vs paper ==\n");
  std::printf(
      "missing values flagged more often for the intersectionally "
      "disadvantaged group: %zu of %zu cases (paper: 2 of 3)\n",
      missing_dis_higher, missing_cases);
  return 0;
}

}  // namespace

int main() { return Run(); }
