// Google-benchmark microbenchmarks for the substrate components: dataset
// synthesis, error detection, repair, feature encoding and model training.
// These measure engineering throughput, not paper results. After the
// benchmark table, a summary line reports the 1-thread vs N-thread speedup
// of the study driver's repeat fan-out, and the whole run is written as
// machine-readable JSON (op name -> seconds per iteration, plus the
// fan-out numbers) to FAIRCLEAN_BENCH_JSON (default BENCH_perf.json) for
// CI trend tracking.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/env.h"
#include "common/thread_pool.h"
#include "core/cleaning.h"
#include "exec/study_driver.h"
#include "datasets/generator.h"
#include "detect/detector.h"
#include "detect/mislabel_detector.h"
#include "detect/outlier_detectors.h"
#include "data/split.h"
#include "ml/encoder.h"
#include "ml/gbdt.h"
#include "ml/isolation_forest.h"
#include "ml/knn.h"
#include "ml/linalg.h"
#include "ml/logistic_regression.h"
#include "ml/tuning.h"
#include "repair/imputer.h"
#include "stats/tests.h"

namespace fairclean {
namespace {

GeneratedDataset MakeBenchData(const std::string& name, size_t rows) {
  Rng rng(1234);
  return MakeDataset(name, rows, &rng).ValueOrDie();
}

struct EncodedData {
  Matrix x;
  std::vector<int> y;
};

EncodedData EncodeAdult(size_t rows) {
  GeneratedDataset dataset = MakeBenchData("adult", rows);
  // Encoding requires complete tuples in this micro-benchmark path.
  DataFrame frame = dataset.frame;
  std::vector<bool> keep(frame.num_rows(), true);
  for (size_t row : frame.RowsWithMissing()) keep[row] = false;
  frame = frame.FilterRows(keep);
  FeatureEncoder encoder;
  std::vector<std::string> features = dataset.spec.FeatureColumns(frame);
  encoder.Fit(frame, features).ok();
  EncodedData data;
  data.x = encoder.Transform(frame).ValueOrDie();
  data.y = ExtractBinaryLabels(frame, dataset.spec.label).ValueOrDie();
  return data;
}

void BM_DatasetSynthesis(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(MakeDataset("adult", rows, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_DatasetSynthesis)->Arg(1000)->Arg(10000);

void BM_MissingDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("adult", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  std::unique_ptr<ErrorDetector> detector =
      DetectorByName("missing_values").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector->Detect(dataset.frame, context,
                                              nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MissingDetection)->Arg(10000);

void BM_IqrOutlierDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("credit", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  IqrOutlierDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(dataset.frame, context,
                                             nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IqrOutlierDetection)->Arg(10000);

void BM_IsolationForestDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("credit", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  IsolationForestOutlierDetector detector;
  for (auto _ : state) {
    Rng rng(11);
    benchmark::DoNotOptimize(detector.Detect(dataset.frame, context, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IsolationForestDetection)->Arg(5000);

void BM_MislabelDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("heart", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  context.label_column = dataset.spec.label;
  MislabelDetector detector;
  for (auto _ : state) {
    Rng rng(13);
    benchmark::DoNotOptimize(detector.Detect(dataset.frame, context, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MislabelDetection)->Arg(2000);

void BM_MeanDummyImputation(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("adult", static_cast<size_t>(state.range(0)));
  std::vector<std::string> features =
      dataset.spec.FeatureColumns(dataset.frame);
  for (auto _ : state) {
    DataFrame copy = dataset.frame;
    MissingValueImputer imputer(NumericImpute::kMean,
                                CategoricalImpute::kDummy);
    imputer.Fit(copy, features).ok();
    imputer.Apply(&copy).ok();
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MeanDummyImputation)->Arg(10000);

void BM_FeatureEncoding(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("adult", static_cast<size_t>(state.range(0)));
  FeatureEncoder encoder;
  encoder.Fit(dataset.frame, dataset.spec.FeatureColumns(dataset.frame))
      .ok();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Transform(dataset.frame));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FeatureEncoding)->Arg(10000);

void BM_LogisticRegressionFit(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    LogisticRegression model;
    Rng rng(17);
    model.Fit(data.x, data.y, &rng).ok();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LogisticRegressionFit)->Arg(1000)->Arg(4000);

void BM_GbdtFit(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GradientBoostedTrees model;
    Rng rng(19);
    model.Fit(data.x, data.y, &rng).ok();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GbdtFit)->Arg(1000);

void BM_KnnPredict(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  KnnClassifier model;
  Rng rng(23);
  model.Fit(data.x, data.y, &rng).ok();
  Matrix queries = data.x.TakeRows({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProba(queries));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_KnnPredict)->Arg(2000);

// --- Kernel microbenches (DESIGN.md §8) ---------------------------------
// Each pair times an optimized kernel against the path it replaced; the
// ratios are written to BENCH_kernels.json so CI can watch them. The
// per-round-sort GBDT ablation is NOT byte-identical to the presort path
// (per-round std::sort resolves equal-key ties differently), which is why
// it only exists behind the presort_reuse knob for benchmarking.

void BM_GbdtFitPresortReuse(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GradientBoostedTrees model;
    Rng rng(19);
    model.Fit(data.x, data.y, &rng).ok();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GbdtFitPresortReuse)->Arg(8000);

void BM_GbdtFitPerRoundSort(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  GbdtOptions options;
  options.presort_reuse = false;
  for (auto _ : state) {
    GradientBoostedTrees model(options);
    Rng rng(19);
    model.Fit(data.x, data.y, &rng).ok();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GbdtFitPerRoundSort)->Arg(8000);

constexpr size_t kKnnBenchQueries = 256;

void BM_KnnPredictBlocked(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  KnnClassifier model;
  Rng rng(23);
  model.Fit(data.x, data.y, &rng).ok();
  std::vector<size_t> query_rows(kKnnBenchQueries);
  for (size_t i = 0; i < kKnnBenchQueries; ++i) query_rows[i] = i;
  Matrix queries = data.x.TakeRows(query_rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProba(queries));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKnnBenchQueries));
}
BENCHMARK(BM_KnnPredictBlocked)->Arg(9000);

void BM_KnnPredictNaive(benchmark::State& state) {
  // The pre-blocking predict loop: reference distance kernel one query at
  // a time, allocating nothing it can reuse across queries either.
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  std::vector<size_t> query_rows(kKnnBenchQueries);
  for (size_t i = 0; i < kKnnBenchQueries; ++i) query_rows[i] = i;
  Matrix queries = data.x.TakeRows(query_rows);
  size_t n_train = data.x.rows();
  size_t k = std::min<size_t>(15, n_train);
  for (auto _ : state) {
    std::vector<double> out(queries.rows());
    std::vector<double> sq(n_train);
    std::vector<std::pair<double, size_t>> dist(n_train);
    for (size_t q = 0; q < queries.rows(); ++q) {
      SquaredDistancesToRow(data.x, queries.Row(q), sq.data());
      for (size_t t = 0; t < n_train; ++t) dist[t] = {sq[t], t};
      std::partial_sort(dist.begin(),
                        dist.begin() + static_cast<ptrdiff_t>(k),
                        dist.end());
      int positives = 0;
      for (size_t j = 0; j < k; ++j) positives += data.y[dist[j].second];
      out[q] = static_cast<double>(positives) / static_cast<double>(k);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKnnBenchQueries));
}
BENCHMARK(BM_KnnPredictNaive)->Arg(9000);

void BM_TuningFoldDataPerGridPoint(benchmark::State& state) {
  // What TuneAndFit used to do: re-slice (and re-presort) every fold for
  // each of the three grid points.
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  Rng fold_rng(31);
  std::vector<TrainTestIndices> folds =
      KFoldIndices(data.x.rows(), 3, &fold_rng);
  for (auto _ : state) {
    for (int grid_point = 0; grid_point < 3; ++grid_point) {
      benchmark::DoNotOptimize(MaterializeTuningFolds(
          data.x, data.y, folds, /*with_presort=*/true));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TuningFoldDataPerGridPoint)->Arg(4000);

void BM_TuningFoldDataShared(benchmark::State& state) {
  // The fold-data cache: one materialization serves the whole grid.
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  Rng fold_rng(31);
  std::vector<TrainTestIndices> folds =
      KFoldIndices(data.x.rows(), 3, &fold_rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaterializeTuningFolds(
        data.x, data.y, folds, /*with_presort=*/true));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_TuningFoldDataShared)->Arg(4000);

void BM_GTest2x2(benchmark::State& state) {
  ContingencyTable2x2 table{523, 9382, 411, 5023};
  for (auto _ : state) {
    benchmark::DoNotOptimize(GTest2x2(table));
  }
}
BENCHMARK(BM_GTest2x2);

void BM_PairedTTest(benchmark::State& state) {
  Rng rng(29);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal(0.8, 0.05);
    y[i] = rng.Normal(0.79, 0.05);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairedTTest(x, y));
  }
}
BENCHMARK(BM_PairedTTest);

// Times one small in-memory cleaning experiment end to end at the given
// repeat fan-out width.
double TimeStudySeconds(size_t threads, const GeneratedDataset& dataset) {
  exec::StudyDriverOptions options;
  options.study.sample_size = 300;
  options.study.num_repeats = 8;
  options.study.cv_folds = 3;
  options.study.seed = 99;
  options.threads = threads;
  exec::StudyDriver driver(options);
  auto start = std::chrono::steady_clock::now();
  driver.RunOrLoad(dataset, "missing_values", "log-reg").ValueOrDie();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Console reporter that additionally captures seconds-per-iteration for
/// every benchmark run, so the table printed to the terminal and the JSON
/// written for CI come from the same measurements.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      double iterations = static_cast<double>(run.iterations);
      if (iterations <= 0) continue;
      // real_accumulated_time is in seconds regardless of the display unit.
      op_seconds_[run.benchmark_name()] =
          run.real_accumulated_time / iterations;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& op_seconds() const {
    return op_seconds_;
  }

 private:
  std::map<std::string, double> op_seconds_;
};

// Times a small 3-cell suite (german x missing values x all models) through
// the suite scheduler at the given experiment-level fan-out width. Caching
// is disabled so the measurement is compute, not disk.
double TimeSuiteSeconds(size_t threads, uint64_t* reused_out) {
  sched::SuiteOptions options;
  options.study.sample_size = 300;
  options.study.num_repeats = 8;
  options.study.cv_folds = 3;
  options.study.seed = 99;
  options.cache_dir.clear();
  options.threads = threads;
  sched::SuiteScheduler scheduler(options);
  sched::StudyScope scope;
  scope.error_type = "missing_values";
  scope.single_pairs = {{"german", "age"}};
  auto start = std::chrono::steady_clock::now();
  scheduler.RunScopeCells(scope).ValueOrDie();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *reused_out = scheduler.artifacts().reused();
  return seconds;
}

// Suite-level fan-out: experiments in parallel (sequential drivers inside),
// the scheduler's inversion of the per-repeat fan-out below. Also reports
// the shared-artifact reuse counter so CI can watch artifact sharing.
void ReportSuiteFanOutSpeedup(std::map<std::string, double>* op_seconds) {
  size_t threads = ThreadPool::DefaultThreadCount();
  uint64_t reused = 0;
  double sequential_s = TimeSuiteSeconds(1, &reused);
  double parallel_s =
      threads > 1 ? TimeSuiteSeconds(threads, &reused) : sequential_s;
  std::printf(
      "suite fan-out:  1 thread %.2fs, %zu threads %.2fs -> %.2fx speedup "
      "(3 cells, sched.artifacts_reused=%llu)\n",
      sequential_s, threads, parallel_s, sequential_s / parallel_s,
      static_cast<unsigned long long>(reused));
  (*op_seconds)["suite_fanout_1_thread"] = sequential_s;
  (*op_seconds)["suite_fanout_n_threads"] = parallel_s;
  (*op_seconds)["sched.artifacts_reused"] = static_cast<double>(reused);
}

void ReportRepeatFanOutSpeedup(std::map<std::string, double>* op_seconds,
                               size_t* threads_out, double* speedup_out) {
  Rng rng(7);
  GeneratedDataset dataset = MakeDataset("german", 500, &rng).ValueOrDie();
  size_t threads = ThreadPool::DefaultThreadCount();
  double sequential_s = TimeStudySeconds(1, dataset);
  double parallel_s =
      threads > 1 ? TimeStudySeconds(threads, dataset) : sequential_s;
  std::printf(
      "\nrepeat fan-out: 1 thread %.2fs, %zu threads %.2fs -> %.2fx speedup "
      "(set FAIRCLEAN_THREADS to change the width)\n",
      sequential_s, threads, parallel_s, sequential_s / parallel_s);
  (*op_seconds)["repeat_fanout_1_thread"] = sequential_s;
  (*op_seconds)["repeat_fanout_n_threads"] = parallel_s;
  *threads_out = threads;
  *speedup_out = sequential_s / parallel_s;
}

// Collects the kernel microbench pairs from the captured run, prints the
// optimized-vs-replaced ratios and writes them (raw seconds + ratios) to
// FAIRCLEAN_BENCH_KERNELS_JSON. Pairs whose benchmarks did not run (e.g.
// filtered out on the command line) are skipped.
void WriteKernelBenchJson(const std::map<std::string, double>& op_seconds) {
  struct KernelPair {
    const char* label;       // key of the ratio entry in the JSON
    const char* baseline;    // benchmark name of the replaced path
    const char* optimized;   // benchmark name of the kernel
  };
  const KernelPair pairs[] = {
      {"gbdt_presort_reuse_speedup", "BM_GbdtFitPerRoundSort/8000",
       "BM_GbdtFitPresortReuse/8000"},
      {"knn_blocked_speedup", "BM_KnnPredictNaive/9000",
       "BM_KnnPredictBlocked/9000"},
      {"fold_cache_speedup", "BM_TuningFoldDataPerGridPoint/4000",
       "BM_TuningFoldDataShared/4000"},
  };
  std::map<std::string, double> kernel_ops;
  double headline_speedup = 1.0;
  for (const KernelPair& pair : pairs) {
    auto baseline = op_seconds.find(pair.baseline);
    auto optimized = op_seconds.find(pair.optimized);
    if (baseline == op_seconds.end() || optimized == op_seconds.end() ||
        optimized->second <= 0.0) {
      continue;
    }
    double ratio = baseline->second / optimized->second;
    kernel_ops[pair.baseline] = baseline->second;
    kernel_ops[pair.optimized] = optimized->second;
    kernel_ops[pair.label] = ratio;
    std::printf("kernel %s: %.2fx (%s %.4fs -> %s %.4fs)\n", pair.label,
                ratio, pair.baseline, baseline->second, pair.optimized,
                optimized->second);
    if (std::string(pair.label) == "gbdt_presort_reuse_speedup") {
      headline_speedup = ratio;
    }
  }
  if (kernel_ops.empty()) return;
  std::string json_path = GetEnvString("FAIRCLEAN_BENCH_KERNELS_JSON",
                                       "BENCH_kernels.json");
  if (json_path.empty()) return;
  Status written = bench::WriteBenchPerfJson(
      json_path, kernel_ops, ThreadPool::DefaultThreadCount(),
      headline_speedup);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                 written.ToString().c_str());
    return;
  }
  std::printf("kernel bench results: %s\n", json_path.c_str());
}

int RunPerfMicro(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::map<std::string, double> op_seconds = reporter.op_seconds();
  WriteKernelBenchJson(op_seconds);
  size_t threads = 1;
  double speedup = 1.0;
  ReportRepeatFanOutSpeedup(&op_seconds, &threads, &speedup);
  ReportSuiteFanOutSpeedup(&op_seconds);

  std::string json_path =
      GetEnvString("FAIRCLEAN_BENCH_JSON", "BENCH_perf.json");
  if (!json_path.empty()) {
    Status written =
        bench::WriteBenchPerfJson(json_path, op_seconds, threads, speedup);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("machine-readable results: %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fairclean

int main(int argc, char** argv) {
  return fairclean::RunPerfMicro(argc, argv);
}
