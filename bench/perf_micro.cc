// Microbenchmarks for the substrate components: dataset synthesis, error
// detection, repair, feature encoding and model training. These measure
// engineering throughput, not paper results.
//
// Two harnesses share this binary:
//   - The paired kernel microbenches and the per-mode suite execution
//     benches run first, each in a forked child (bench/bench_common.h):
//     >= 5 timed iterations per kernel, median + p95 reported, written to
//     FAIRCLEAN_BENCH_KERNELS_JSON (default BENCH_kernels.json).
//   - The remaining throughput benches run under google-benchmark, followed
//     by the repeat/suite fan-out summary lines, and land in
//     FAIRCLEAN_BENCH_JSON (default BENCH_perf.json) for CI trend tracking.
// The forked children must come first: fork requires a single-threaded
// parent, and both google-benchmark and the fan-out reports spawn pools.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <utility>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bench/bench_util.h"
#include "common/env.h"
#include "common/exec_mode.h"
#include "common/thread_pool.h"
#include "core/cleaning.h"
#include "exec/study_driver.h"
#include "datasets/generator.h"
#include "detect/detector.h"
#include "detect/mislabel_detector.h"
#include "detect/outlier_detectors.h"
#include "data/split.h"
#include "ml/encoder.h"
#include "ml/gbdt.h"
#include "ml/isolation_forest.h"
#include "ml/knn.h"
#include "ml/linalg.h"
#include "ml/logistic_regression.h"
#include "ml/tuning.h"
#include "repair/imputer.h"
#include "stats/tests.h"

namespace fairclean {
namespace {

GeneratedDataset MakeBenchData(const std::string& name, size_t rows) {
  Rng rng(1234);
  return MakeDataset(name, rows, &rng).ValueOrDie();
}

struct EncodedData {
  Matrix x;
  std::vector<int> y;
};

EncodedData EncodeAdult(size_t rows) {
  GeneratedDataset dataset = MakeBenchData("adult", rows);
  // Encoding requires complete tuples in this micro-benchmark path.
  DataFrame frame = dataset.frame;
  std::vector<bool> keep(frame.num_rows(), true);
  for (size_t row : frame.RowsWithMissing()) keep[row] = false;
  frame = frame.FilterRows(keep);
  FeatureEncoder encoder;
  std::vector<std::string> features = dataset.spec.FeatureColumns(frame);
  encoder.Fit(frame, features).ok();
  EncodedData data;
  data.x = encoder.Transform(frame).ValueOrDie();
  data.y = ExtractBinaryLabels(frame, dataset.spec.label).ValueOrDie();
  return data;
}

void BM_DatasetSynthesis(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(MakeDataset("adult", rows, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_DatasetSynthesis)->Arg(1000)->Arg(10000);

void BM_MissingDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("adult", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  std::unique_ptr<ErrorDetector> detector =
      DetectorByName("missing_values").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector->Detect(dataset.frame, context,
                                              nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MissingDetection)->Arg(10000);

void BM_IqrOutlierDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("credit", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  IqrOutlierDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(dataset.frame, context,
                                             nullptr));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IqrOutlierDetection)->Arg(10000);

void BM_IsolationForestDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("credit", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  IsolationForestOutlierDetector detector;
  for (auto _ : state) {
    Rng rng(11);
    benchmark::DoNotOptimize(detector.Detect(dataset.frame, context, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IsolationForestDetection)->Arg(5000);

void BM_MislabelDetection(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("heart", static_cast<size_t>(state.range(0)));
  DetectionContext context;
  context.inspect_columns = dataset.spec.FeatureColumns(dataset.frame);
  context.label_column = dataset.spec.label;
  MislabelDetector detector;
  for (auto _ : state) {
    Rng rng(13);
    benchmark::DoNotOptimize(detector.Detect(dataset.frame, context, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MislabelDetection)->Arg(2000);

void BM_MeanDummyImputation(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("adult", static_cast<size_t>(state.range(0)));
  std::vector<std::string> features =
      dataset.spec.FeatureColumns(dataset.frame);
  for (auto _ : state) {
    DataFrame copy = dataset.frame;
    MissingValueImputer imputer(NumericImpute::kMean,
                                CategoricalImpute::kDummy);
    imputer.Fit(copy, features).ok();
    imputer.Apply(&copy).ok();
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MeanDummyImputation)->Arg(10000);

void BM_FeatureEncoding(benchmark::State& state) {
  GeneratedDataset dataset =
      MakeBenchData("adult", static_cast<size_t>(state.range(0)));
  FeatureEncoder encoder;
  encoder.Fit(dataset.frame, dataset.spec.FeatureColumns(dataset.frame))
      .ok();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Transform(dataset.frame));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FeatureEncoding)->Arg(10000);

void BM_LogisticRegressionFit(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    LogisticRegression model;
    Rng rng(17);
    model.Fit(data.x, data.y, &rng).ok();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LogisticRegressionFit)->Arg(1000)->Arg(4000);

void BM_GbdtFit(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GradientBoostedTrees model;
    Rng rng(19);
    model.Fit(data.x, data.y, &rng).ok();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GbdtFit)->Arg(1000);

void BM_KnnPredict(benchmark::State& state) {
  EncodedData data = EncodeAdult(static_cast<size_t>(state.range(0)));
  KnnClassifier model;
  Rng rng(23);
  model.Fit(data.x, data.y, &rng).ok();
  Matrix queries = data.x.TakeRows({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.PredictProba(queries));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10);
}
BENCHMARK(BM_KnnPredict)->Arg(2000);

void BM_GTest2x2(benchmark::State& state) {
  ContingencyTable2x2 table{523, 9382, 411, 5023};
  for (auto _ : state) {
    benchmark::DoNotOptimize(GTest2x2(table));
  }
}
BENCHMARK(BM_GTest2x2);

void BM_PairedTTest(benchmark::State& state) {
  Rng rng(29);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = rng.Normal(0.8, 0.05);
    y[i] = rng.Normal(0.79, 0.05);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairedTTest(x, y));
  }
}
BENCHMARK(BM_PairedTTest);

// --- Forked kernel microbenches (DESIGN.md §8) --------------------------
// Each pair times an optimized kernel against the path it replaced; the
// median/p95 per op and the pair ratios are written to BENCH_kernels.json
// so CI can watch them. Every case runs in its own forked child
// (bench/bench_common.h): setup untimed, >= 5 timed iterations, no warm
// allocator or thread pool inherited from a previous case. The
// per-round-sort GBDT ablation is NOT byte-identical to the presort path
// (per-round std::sort resolves equal-key ties differently), which is why
// it only exists behind the presort_reuse knob for benchmarking.

constexpr size_t kKnnBenchQueries = 256;

struct ForkedCase {
  std::string key;  // op key in the kernels JSON
  std::function<std::function<void()>()> make_body;
};

std::vector<ForkedCase> KernelCases() {
  std::vector<ForkedCase> cases;
  cases.push_back({"BM_GbdtFitPresortReuse/8000", [] {
    auto data = std::make_shared<EncodedData>(EncodeAdult(8000));
    return std::function<void()>([data] {
      GradientBoostedTrees model;
      Rng rng(19);
      model.Fit(data->x, data->y, &rng).ok();
    });
  }});
  cases.push_back({"BM_GbdtFitPerRoundSort/8000", [] {
    auto data = std::make_shared<EncodedData>(EncodeAdult(8000));
    return std::function<void()>([data] {
      GbdtOptions options;
      options.presort_reuse = false;
      GradientBoostedTrees model(options);
      Rng rng(19);
      model.Fit(data->x, data->y, &rng).ok();
    });
  }});
  cases.push_back({"BM_KnnPredictBlocked/9000", [] {
    auto data = std::make_shared<EncodedData>(EncodeAdult(9000));
    auto model = std::make_shared<KnnClassifier>();
    Rng rng(23);
    model->Fit(data->x, data->y, &rng).ok();
    std::vector<size_t> query_rows(kKnnBenchQueries);
    for (size_t i = 0; i < kKnnBenchQueries; ++i) query_rows[i] = i;
    auto queries = std::make_shared<Matrix>(data->x.TakeRows(query_rows));
    return std::function<void()>([data, model, queries] {
      std::vector<double> out = model->PredictProba(*queries);
      (void)out;
    });
  }});
  cases.push_back({"BM_KnnPredictNaive/9000", [] {
    // The exact reference path naive mode runs: per-query distance rows,
    // sequential, no packing (KnnOptions::blocked = false).
    auto data = std::make_shared<EncodedData>(EncodeAdult(9000));
    KnnOptions options;
    options.blocked = false;
    auto model = std::make_shared<KnnClassifier>(options);
    Rng rng(23);
    model->Fit(data->x, data->y, &rng).ok();
    std::vector<size_t> query_rows(kKnnBenchQueries);
    for (size_t i = 0; i < kKnnBenchQueries; ++i) query_rows[i] = i;
    auto queries = std::make_shared<Matrix>(data->x.TakeRows(query_rows));
    return std::function<void()>([data, model, queries] {
      std::vector<double> out = model->PredictProba(*queries);
      (void)out;
    });
  }});
  cases.push_back({"BM_TuningFoldDataPerGridPoint/4000", [] {
    // What naive-mode TuneAndFit does: re-slice (and re-presort) every
    // fold for each of the three grid points.
    auto data = std::make_shared<EncodedData>(EncodeAdult(4000));
    Rng fold_rng(31);
    auto folds = std::make_shared<std::vector<TrainTestIndices>>(
        KFoldIndices(data->x.rows(), 3, &fold_rng));
    return std::function<void()>([data, folds] {
      for (int grid_point = 0; grid_point < 3; ++grid_point) {
        auto fold_data = MaterializeTuningFolds(data->x, data->y, *folds,
                                                /*with_presort=*/true);
        (void)fold_data;
      }
    });
  }});
  cases.push_back({"BM_TuningFoldDataShared/4000", [] {
    // The fold-data cache: one materialization serves the whole grid.
    auto data = std::make_shared<EncodedData>(EncodeAdult(4000));
    Rng fold_rng(31);
    auto folds = std::make_shared<std::vector<TrainTestIndices>>(
        KFoldIndices(data->x.rows(), 3, &fold_rng));
    return std::function<void()>([data, folds] {
      auto fold_data = MaterializeTuningFolds(data->x, data->y, *folds,
                                              /*with_presort=*/true);
      (void)fold_data;
    });
  }});
  return cases;
}

// --- Forked per-mode suite execution bench (DESIGN.md §15) --------------
// The committed suite fan-out bench of the execution-mode ladder: the
// 9-cell missing-values scope (adult/folk/german x three models) through
// the suite scheduler at a fixed 4-thread width, one forked child per
// timed sample, caching disabled so every iteration measures compute. The
// exec_fused_speedup ratio (naive median / fused median) is the headline
// "speedup" of BENCH_kernels.json.

constexpr size_t kExecBenchThreads = 4;

std::function<std::function<void()>()> ExecModeBody(ExecMode mode,
                                                    size_t sample) {
  return [mode, sample] {
    return std::function<void()>([mode, sample] {
      sched::SuiteOptions options;
      options.study.sample_size = sample;
      options.study.num_repeats = 2;
      options.study.cv_folds = 3;
      options.study.seed = 42;
      options.study.exec_mode = mode;
      options.threads = kExecBenchThreads;
      options.cache_dir.clear();
      sched::SuiteScheduler scheduler(options);
      scheduler.RunScopeCells(sched::MissingScope()).ValueOrDie();
    });
  };
}

// Runs the forked kernel and exec-mode cases and records their stats.
// FAIRCLEAN_BENCH_KERNEL_ITERS (default 7, floor 5) and
// FAIRCLEAN_BENCH_EXEC_ITERS (default 3) control the sample counts; either
// set to 0 skips that section. FAIRCLEAN_BENCH_EXEC_SAMPLE (default 8000)
// scales the suite bench rows.
void RunForkedCases(std::map<std::string, double>* ops,
                    std::map<std::string, double>* p95,
                    std::map<std::string, size_t>* iters) {
  int64_t kernel_iters =
      GetEnvCount("FAIRCLEAN_BENCH_KERNEL_ITERS", 7).ValueOrDie();
  if (kernel_iters > 0) kernel_iters = std::max<int64_t>(kernel_iters, 5);
  int64_t exec_iters =
      GetEnvCount("FAIRCLEAN_BENCH_EXEC_ITERS", 3).ValueOrDie();
  int64_t exec_sample =
      GetEnvCount("FAIRCLEAN_BENCH_EXEC_SAMPLE", 8000).ValueOrDie();

  std::vector<std::pair<ForkedCase, size_t>> cases;
  if (kernel_iters > 0) {
    for (ForkedCase& c : KernelCases()) {
      cases.emplace_back(std::move(c), static_cast<size_t>(kernel_iters));
    }
  }
  if (exec_iters > 0) {
    for (ExecMode mode :
         {ExecMode::kNaive, ExecMode::kShared, ExecMode::kFused}) {
      ForkedCase c;
      c.key = std::string("exec_") + ExecModeName(mode) + "_4t";
      c.make_body = ExecModeBody(mode, static_cast<size_t>(exec_sample));
      cases.emplace_back(std::move(c), static_cast<size_t>(exec_iters));
    }
  }
  for (const auto& [c, n] : cases) {
    Result<bench::BenchStats> stats =
        bench::RunForkedBench(c.key, n, c.make_body);
    if (!stats.ok()) {
      std::fprintf(stderr, "forked bench %s failed: %s\n", c.key.c_str(),
                   stats.status().ToString().c_str());
      continue;
    }
    (*ops)[c.key] = stats->median;
    (*p95)[c.key] = stats->p95;
    (*iters)[c.key] = stats->iters;
    std::printf("forked %-36s median %10.4fs  p95 %10.4fs  (%zu iters)\n",
                c.key.c_str(), stats->median, stats->p95, stats->iters);
    std::fflush(stdout);
  }
}

// Derives the pair ratios from the forked medians, prints them, and writes
// the enriched kernels JSON to FAIRCLEAN_BENCH_KERNELS_JSON. Pairs whose
// cases did not run (skipped via the env knobs or a failed child) are
// dropped from the report.
void WriteKernelBenchJson(std::map<std::string, double> ops,
                          const std::map<std::string, double>& p95,
                          const std::map<std::string, size_t>& iters) {
  struct KernelPair {
    const char* label;       // key of the ratio entry in the JSON
    const char* baseline;    // op key of the replaced path
    const char* optimized;   // op key of the kernel
  };
  const KernelPair pairs[] = {
      {"gbdt_presort_reuse_speedup", "BM_GbdtFitPerRoundSort/8000",
       "BM_GbdtFitPresortReuse/8000"},
      {"knn_blocked_speedup", "BM_KnnPredictNaive/9000",
       "BM_KnnPredictBlocked/9000"},
      {"fold_cache_speedup", "BM_TuningFoldDataPerGridPoint/4000",
       "BM_TuningFoldDataShared/4000"},
      {"exec_shared_speedup", "exec_naive_4t", "exec_shared_4t"},
      {"exec_fused_speedup", "exec_naive_4t", "exec_fused_4t"},
  };
  double headline_speedup = 1.0;
  for (const KernelPair& pair : pairs) {
    auto baseline = ops.find(pair.baseline);
    auto optimized = ops.find(pair.optimized);
    if (baseline == ops.end() || optimized == ops.end() ||
        optimized->second <= 0.0) {
      continue;
    }
    double ratio = baseline->second / optimized->second;
    ops[pair.label] = ratio;
    std::printf("kernel %s: %.2fx (%s %.4fs -> %s %.4fs)\n", pair.label,
                ratio, pair.baseline, baseline->second, pair.optimized,
                optimized->second);
    // The exec-mode ladder is the headline once it ran; the historical
    // GBDT pair keeps kernels-only runs meaningful.
    if (std::string(pair.label) == "exec_fused_speedup" ||
        (headline_speedup == 1.0 &&
         std::string(pair.label) == "gbdt_presort_reuse_speedup")) {
      headline_speedup = ratio;
    }
  }
  if (ops.empty()) return;
  std::string json_path = GetEnvString("FAIRCLEAN_BENCH_KERNELS_JSON",
                                       "BENCH_kernels.json");
  if (json_path.empty()) return;
  Status written = bench::WriteKernelStatsJson(
      json_path, ops, p95, iters, kExecBenchThreads, headline_speedup);
  if (!written.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                 written.ToString().c_str());
    return;
  }
  std::printf("kernel bench results: %s\n", json_path.c_str());
}

// Times one small in-memory cleaning experiment end to end at the given
// repeat fan-out width.
double TimeStudySeconds(size_t threads, const GeneratedDataset& dataset) {
  exec::StudyDriverOptions options;
  options.study.sample_size = 300;
  options.study.num_repeats = 8;
  options.study.cv_folds = 3;
  options.study.seed = 99;
  options.threads = threads;
  exec::StudyDriver driver(options);
  auto start = std::chrono::steady_clock::now();
  driver.RunOrLoad(dataset, "missing_values", "log-reg").ValueOrDie();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Console reporter that additionally captures seconds-per-iteration for
/// every benchmark run, so the table printed to the terminal and the JSON
/// written for CI come from the same measurements.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      double iterations = static_cast<double>(run.iterations);
      if (iterations <= 0) continue;
      // real_accumulated_time is in seconds regardless of the display unit.
      op_seconds_[run.benchmark_name()] =
          run.real_accumulated_time / iterations;
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& op_seconds() const {
    return op_seconds_;
  }

 private:
  std::map<std::string, double> op_seconds_;
};

// Times a small 3-cell suite (german x missing values x all models) through
// the suite scheduler at the given experiment-level fan-out width. Caching
// is disabled so the measurement is compute, not disk.
double TimeSuiteSeconds(size_t threads, uint64_t* reused_out) {
  sched::SuiteOptions options;
  options.study.sample_size = 300;
  options.study.num_repeats = 8;
  options.study.cv_folds = 3;
  options.study.seed = 99;
  options.cache_dir.clear();
  options.threads = threads;
  sched::SuiteScheduler scheduler(options);
  sched::StudyScope scope;
  scope.error_type = "missing_values";
  scope.single_pairs = {{"german", "age"}};
  auto start = std::chrono::steady_clock::now();
  scheduler.RunScopeCells(scope).ValueOrDie();
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  *reused_out = scheduler.artifacts().reused();
  return seconds;
}

// Suite-level fan-out: experiments in parallel (sequential drivers inside),
// the scheduler's inversion of the per-repeat fan-out below. Also reports
// the shared-artifact reuse counter so CI can watch artifact sharing.
void ReportSuiteFanOutSpeedup(std::map<std::string, double>* op_seconds) {
  size_t threads = ThreadPool::DefaultThreadCount();
  uint64_t reused = 0;
  double sequential_s = TimeSuiteSeconds(1, &reused);
  double parallel_s =
      threads > 1 ? TimeSuiteSeconds(threads, &reused) : sequential_s;
  std::printf(
      "suite fan-out:  1 thread %.2fs, %zu threads %.2fs -> %.2fx speedup "
      "(3 cells, sched.artifacts_reused=%llu)\n",
      sequential_s, threads, parallel_s, sequential_s / parallel_s,
      static_cast<unsigned long long>(reused));
  (*op_seconds)["suite_fanout_1_thread"] = sequential_s;
  (*op_seconds)["suite_fanout_n_threads"] = parallel_s;
  (*op_seconds)["sched.artifacts_reused"] = static_cast<double>(reused);
}

void ReportRepeatFanOutSpeedup(std::map<std::string, double>* op_seconds,
                               size_t* threads_out, double* speedup_out) {
  Rng rng(7);
  GeneratedDataset dataset = MakeDataset("german", 500, &rng).ValueOrDie();
  size_t threads = ThreadPool::DefaultThreadCount();
  double sequential_s = TimeStudySeconds(1, dataset);
  double parallel_s =
      threads > 1 ? TimeStudySeconds(threads, dataset) : sequential_s;
  std::printf(
      "\nrepeat fan-out: 1 thread %.2fs, %zu threads %.2fs -> %.2fx speedup "
      "(set FAIRCLEAN_THREADS to change the width)\n",
      sequential_s, threads, parallel_s, sequential_s / parallel_s);
  (*op_seconds)["repeat_fanout_1_thread"] = sequential_s;
  (*op_seconds)["repeat_fanout_n_threads"] = parallel_s;
  *threads_out = threads;
  *speedup_out = sequential_s / parallel_s;
}

int RunPerfMicro(int argc, char** argv) {
  // Forked benches strictly first: the children must fork from a
  // single-threaded parent, and everything below spawns thread pools.
  std::map<std::string, double> forked_ops;
  std::map<std::string, double> forked_p95;
  std::map<std::string, size_t> forked_iters;
  RunForkedCases(&forked_ops, &forked_p95, &forked_iters);
  WriteKernelBenchJson(forked_ops, forked_p95, forked_iters);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::map<std::string, double> op_seconds = reporter.op_seconds();
  size_t threads = 1;
  double speedup = 1.0;
  ReportRepeatFanOutSpeedup(&op_seconds, &threads, &speedup);
  ReportSuiteFanOutSpeedup(&op_seconds);

  std::string json_path =
      GetEnvString("FAIRCLEAN_BENCH_JSON", "BENCH_perf.json");
  if (!json_path.empty()) {
    Status written =
        bench::WriteBenchPerfJson(json_path, op_seconds, threads, speedup);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("machine-readable results: %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fairclean

int main(int argc, char** argv) {
  return fairclean::RunPerfMicro(argc, argv);
}
