#include "bench/bench_common.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/json_lite.h"

namespace fairclean {
namespace bench {

BenchStats StatsFromSamples(std::vector<double> samples) {
  BenchStats stats;
  stats.iters = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  stats.median = n % 2 == 1
                     ? samples[n / 2]
                     : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  size_t rank = (n * 95 + 99) / 100;  // ceil(0.95 * n), nearest-rank
  stats.p95 = samples[std::min(rank, n) - 1];
  return stats;
}

Result<BenchStats> RunForkedBench(
    const std::string& label, size_t iters,
    const std::function<std::function<void()>()>& make_body) {
  if (iters == 0) return Status::InvalidArgument("iters must be positive");
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::Internal("pipe failed for bench " + label);
  }
  // The child inherits stdio buffers; flush so its /dev/null redirect
  // cannot replay half-written parent output.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return Status::Internal("fork failed for bench " + label);
  }
  if (pid == 0) {
    close(fds[0]);
    // The body's console output (driver narration, tables) would shred the
    // bench table; the pipe carries the measurements.
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, STDOUT_FILENO);
      close(devnull);
    }
    std::function<void()> body = make_body();
    std::vector<double> seconds(iters, 0.0);
    for (size_t i = 0; i < iters; ++i) {
      auto start = std::chrono::steady_clock::now();
      body();
      seconds[i] = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    }
    const char* bytes = reinterpret_cast<const char*>(seconds.data());
    size_t remaining = iters * sizeof(double);
    while (remaining > 0) {
      ssize_t written = write(fds[1], bytes, remaining);
      if (written <= 0) _exit(2);
      bytes += written;
      remaining -= static_cast<size_t>(written);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::vector<double> seconds(iters, 0.0);
  char* bytes = reinterpret_cast<char*>(seconds.data());
  size_t wanted = iters * sizeof(double);
  size_t got = 0;
  while (got < wanted) {
    ssize_t n = read(fds[0], bytes + got, wanted - got);
    if (n <= 0) break;
    got += static_cast<size_t>(n);
  }
  close(fds[0]);
  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) != pid) {
    return Status::Internal("waitpid failed for bench " + label);
  }
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    return Status::Internal(StrFormat(
        "bench %s child failed (%s %d)", label.c_str(),
        WIFSIGNALED(wstatus) ? "signal" : "exit",
        WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : WEXITSTATUS(wstatus)));
  }
  if (got != wanted) {
    return Status::Internal(StrFormat(
        "bench %s child sent %zu of %zu sample bytes", label.c_str(), got,
        wanted));
  }
  return StatsFromSamples(std::move(seconds));
}

Status WriteKernelStatsJson(const std::string& path,
                            const std::map<std::string, double>& ops,
                            const std::map<std::string, double>& p95,
                            const std::map<std::string, size_t>& iters,
                            size_t threads, double speedup) {
  std::string body = "{\"ops\":{";
  bool first = true;
  for (const auto& [name, value] : ops) {
    body += StrFormat("%s\"%s\":%.9g", first ? "" : ",",
                      obs::JsonEscape(name).c_str(), value);
    first = false;
  }
  body += "},\"p95\":{";
  first = true;
  for (const auto& [name, value] : p95) {
    body += StrFormat("%s\"%s\":%.9g", first ? "" : ",",
                      obs::JsonEscape(name).c_str(), value);
    first = false;
  }
  body += "},\"iters\":{";
  first = true;
  for (const auto& [name, value] : iters) {
    body += StrFormat("%s\"%s\":%zu", first ? "" : ",",
                      obs::JsonEscape(name).c_str(), value);
    first = false;
  }
  body += StrFormat("},\"threads\":%zu,\"speedup\":%.6g}\n", threads,
                    speedup);
  return WriteFileAtomic(path, body);
}

}  // namespace bench
}  // namespace fairclean
