// Storage-engine benchmark: the paged artifact store against the flat
// one-file-per-key baseline at several cache sizes (10k and 100k entries
// by default).
//
// Process shape: each (backend, entries) combination runs in a forked
// child so RSS is measured per-process rather than accumulated across
// combinations. The child bulk-loads deterministic ~1 KB checksummed
// records, then measures:
//   - load_s        wall time of the bulk load (flat fsyncs per entry via
//                   WriteFileAtomic; the paged load runs with fsync off,
//                   the documented bulk-load mode — load_fsync records
//                   which),
//   - cold_open_ms  median of five cold-start rounds: construct a fresh
//                   store handle, enumerate every key (the suite's resume
//                   path must learn which cells exist — a full directory
//                   scan for flat, meta recovery plus a B-tree iterate for
//                   paged), then serve one record,
//   - lookup_rps    random point lookups over one warm handle,
//   - rss_mb        VmRSS after the lookup phase,
//   - store_bytes   total bytes on disk under the cache directory.
//
// Output: a human summary on stdout and a JSON report (default
// BENCH_store.json, --out to change). --entries takes a comma-separated
// list so CI can run a scaled-down pass without touching the committed
// numbers.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/safe_io.h"
#include "common/strings.h"
#include "obs/log.h"
#include "store/blob_store.h"
#include "store/paged_store.h"

namespace {

using namespace fairclean;  // NOLINT

constexpr size_t kLookups = 20000;
constexpr size_t kColdOpenRounds = 5;
constexpr const char* kScratchDir = "store_bench_scratch";

std::string NthKey(size_t i) {
  return StrFormat("bench_%08zu.json", i);
}

// ~1.1 KB of deterministic record-shaped bytes, framed with the same
// checksum footer the real cache files carry.
std::string MakeValue(size_t i) {
  std::string body = StrFormat("{\"cell\":\"bench_%08zu\",\"records\":[", i);
  for (size_t r = 0; r < 24; ++r) {
    if (r > 0) body += ",";
    body += StrFormat("{\"repeat\":%zu,\"accuracy\":0.%04zu,\"dd\":0.%04zu}",
                      r, (i * 31 + r * 7) % 10000, (i * 17 + r * 3) % 10000);
  }
  body += "]}\n";
  return AppendChecksumFooter(body);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double RssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atof(line.c_str() + 6) / 1024.0;  // kB reported
    }
  }
  return 0.0;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

// One timed cold-start round: fresh store handle, full key enumeration
// (what a resumed suite does to learn which cells it already holds), one
// record served. The OS page cache stays warm across rounds for both
// backends, so this isolates the engine's own open cost (directory scan
// vs. meta recovery plus index iterate) rather than disk spin-up.
Result<double> ColdOpenMs(const std::string& backend, const std::string& dir,
                          size_t entries, const std::string& key) {
  auto start = std::chrono::steady_clock::now();
  size_t seen = 0;
  if (backend == "flat") {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.is_regular_file(ec)) ++seen;
    }
    store::FlatFileStore flat(dir);
    Result<std::string> value = flat.Read(key);
    if (!value.ok()) return value.status();
  } else {
    store::PagedStoreOptions options;
    Result<std::unique_ptr<store::PagedStore>> paged = store::PagedStore::Open(
        dir + "/" + store::PagedBlobStore::kPagesFileName, options);
    if (!paged.ok()) return paged.status();
    Result<std::vector<std::string>> keys = (*paged)->ListKeys();
    if (!keys.ok()) return keys.status();
    seen = keys->size();
    Result<std::string> value = (*paged)->Get(key);
    if (!value.ok()) return value.status();
  }
  if (seen != entries) {
    return Status::InvalidArgument(
        StrFormat("cold open saw %zu keys, want %zu", seen, entries));
  }
  return SecondsSince(start) * 1000.0;
}

// Child: benchmarks one (backend, entries) combination and reports one
// JSON object line over `out_fd`.
int ComboChild(const std::string& backend, size_t entries, int out_fd) {
  std::string dir =
      StrFormat("%s/%s_%zu", kScratchDir, backend.c_str(), entries);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "store_bench: create %s failed\n", dir.c_str());
    return 1;
  }

  // Bulk load. The flat path is the production write path (atomic tmp +
  // fsync + rename per entry); the paged path uses the engine's bulk-load
  // mode (fsync off) — crash safety is irrelevant for a scratch load.
  const bool load_fsync = backend == "flat";
  auto load_start = std::chrono::steady_clock::now();
  if (backend == "flat") {
    store::FlatFileStore flat(dir);
    for (size_t i = 0; i < entries; ++i) {
      Status written = flat.Write(NthKey(i), MakeValue(i));
      if (!written.ok()) {
        std::fprintf(stderr, "store_bench: flat load: %s\n",
                     written.ToString().c_str());
        return 1;
      }
    }
  } else {
    store::PagedStoreOptions options;
    options.fsync = false;
    Result<std::unique_ptr<store::PagedStore>> paged = store::PagedStore::Open(
        dir + "/" + store::PagedBlobStore::kPagesFileName, options);
    if (!paged.ok()) {
      std::fprintf(stderr, "store_bench: paged open: %s\n",
                   paged.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < entries; ++i) {
      Status put = (*paged)->Put(NthKey(i), MakeValue(i));
      if (!put.ok()) {
        std::fprintf(stderr, "store_bench: paged load: %s\n",
                     put.ToString().c_str());
        return 1;
      }
    }
  }
  double load_s = SecondsSince(load_start);

  // Cold opens: median over a handful of rounds.
  std::vector<double> rounds;
  for (size_t r = 0; r < kColdOpenRounds; ++r) {
    Result<double> ms = ColdOpenMs(backend, dir, entries, NthKey(entries / 2));
    if (!ms.ok()) {
      std::fprintf(stderr, "store_bench: cold open: %s\n",
                   ms.status().ToString().c_str());
      return 1;
    }
    rounds.push_back(*ms);
  }
  std::sort(rounds.begin(), rounds.end());
  double cold_open_ms = rounds[rounds.size() / 2];

  // Warm point lookups over one handle, uniform random keys.
  std::mt19937 rng(1234);
  std::uniform_int_distribution<size_t> pick(0, entries - 1);
  double lookup_s = 0.0;
  if (backend == "flat") {
    store::FlatFileStore flat(dir);
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kLookups; ++i) {
      Result<std::string> value = flat.Read(NthKey(pick(rng)));
      if (!value.ok()) {
        std::fprintf(stderr, "store_bench: flat lookup: %s\n",
                     value.status().ToString().c_str());
        return 1;
      }
    }
    lookup_s = SecondsSince(start);
  } else {
    store::PagedStoreOptions options;
    Result<std::unique_ptr<store::PagedStore>> paged = store::PagedStore::Open(
        dir + "/" + store::PagedBlobStore::kPagesFileName, options);
    if (!paged.ok()) {
      std::fprintf(stderr, "store_bench: paged reopen: %s\n",
                   paged.status().ToString().c_str());
      return 1;
    }
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kLookups; ++i) {
      Result<std::string> value = (*paged)->Get(NthKey(pick(rng)));
      if (!value.ok()) {
        std::fprintf(stderr, "store_bench: paged lookup: %s\n",
                     value.status().ToString().c_str());
        return 1;
      }
    }
    lookup_s = SecondsSince(start);
  }
  double lookup_rps = lookup_s > 0.0 ? kLookups / lookup_s : 0.0;

  double rss_mb = RssMb();
  uint64_t store_bytes = DirBytes(dir);
  std::filesystem::remove_all(dir, ec);

  std::string line = StrFormat(
      "{\"load_s\":%.3f,\"load_fsync\":%s,\"cold_open_ms\":%.3f,"
      "\"lookup_rps\":%.0f,\"rss_mb\":%.1f,\"store_bytes\":%llu}\n",
      load_s, load_fsync ? "true" : "false", cold_open_ms, lookup_rps, rss_mb,
      static_cast<unsigned long long>(store_bytes));
  if (::write(out_fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    return 1;
  }
  ::close(out_fd);
  return 0;
}

Result<std::string> ReadPipeLine(int fd) {
  std::string text;
  char chunk[256];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pipe read failed");
    }
    if (n == 0) break;
    text.append(chunk, static_cast<size_t>(n));
  }
  while (!text.empty() && text.back() == '\n') text.pop_back();
  if (text.empty()) return Status::IoError("child reported nothing");
  return text;
}

Result<std::string> RunCombo(const std::string& backend, size_t entries) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return Status::IoError("pipe failed");
  pid_t pid = ::fork();
  if (pid < 0) return Status::IoError("fork failed");
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::_exit(ComboChild(backend, entries, pipe_fds[1]));
  }
  ::close(pipe_fds[1]);
  Result<std::string> report = ReadPipeLine(pipe_fds[0]);
  ::close(pipe_fds[0]);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
    return Status::IoError(
        StrFormat("%s/%zu child failed", backend.c_str(), entries));
  }
  return report;
}

int Run(int argc, char** argv) {
  obs::InitLogLevelFromEnv(obs::LogLevel::kInfo);

  std::string out_path = "BENCH_store.json";
  std::string entries_arg = "10000,100000";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--entries") == 0 && i + 1 < argc) {
      entries_arg = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: store_bench [--out path] [--entries n1,n2,...]\n");
      return 1;
    }
  }

  std::vector<size_t> levels;
  for (size_t pos = 0; pos < entries_arg.size();) {
    size_t comma = entries_arg.find(',', pos);
    if (comma == std::string::npos) comma = entries_arg.size();
    long n = std::atol(entries_arg.substr(pos, comma - pos).c_str());
    if (n <= 0) {
      std::fprintf(stderr, "store_bench: bad --entries value\n");
      return 1;
    }
    levels.push_back(static_cast<size_t>(n));
    pos = comma + 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(kScratchDir, ec);

  std::string json = StrFormat(
      "{\"bench\":\"store\",\"value_bytes\":%zu,\"lookups\":%zu,"
      "\"levels\":[",
      MakeValue(0).size(), kLookups);
  for (size_t i = 0; i < levels.size(); ++i) {
    size_t entries = levels[i];
    if (i > 0) json += ",";
    json += StrFormat("{\"entries\":%zu", entries);
    for (const char* backend : {"flat", "paged"}) {
      Result<std::string> report = RunCombo(backend, entries);
      if (!report.ok()) {
        std::fprintf(stderr, "store_bench: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      std::printf("  %s n=%zu %s\n", backend, entries, report->c_str());
      json += StrFormat(",\"%s\":%s", backend, report->c_str());
    }
    json += "}";
  }
  json += "]}\n";

  std::filesystem::remove_all(kScratchDir, ec);
  Status written = WriteFileAtomic(out_path, json);
  if (!written.ok()) {
    std::fprintf(stderr, "write %s: %s\n", out_path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("store_bench: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
