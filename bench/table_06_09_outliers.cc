// Reproduces Tables VI-IX: impact of auto-cleaning outliers on predictive
// parity and equal opportunity, for single-attribute and intersectional
// group definitions. Nine cleaning configurations ({sd, iqr, if} detection
// x {mean, median, mode} repair) x three models.

#include "bench/bench_util.h"

namespace {

using fairclean::bench::OutlierScope;
using fairclean::bench::PaperTable;
using fairclean::bench::RunTableBench;

const PaperTable kReferences[4] = {
    {"Table VI: outliers, single-attribute, PP",
     {{21.2, 1.1, 1.6}, {21.2, 25.9, 14.3}, {5.3, 3.2, 6.3}}},
    {"Table VII: outliers, single-attribute, EO",
     {{28.0, 5.8, 14.8}, {15.9, 24.3, 7.4}, {3.7, 0.0, 0.0}}},
    {"Table VIII: outliers, intersectional, PP",
     {{14.8, 0.9, 0.9}, {28.7, 25.0, 8.3}, {4.6, 2.8, 13.9}}},
    {"Table IX: outliers, intersectional, EO",
     {{15.7, 0.9, 16.7}, {32.4, 26.9, 6.5}, {0.0, 0.9, 0.0}}},
};

}  // namespace

int main() {
  return RunTableBench(OutlierScope(), kReferences,
                       "Tables VI-IX: impact of auto-cleaning outliers");
}
