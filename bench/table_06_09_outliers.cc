// Reproduces Tables VI-IX: impact of auto-cleaning outliers on predictive
// parity and equal opportunity, for single-attribute and intersectional
// group definitions. Nine cleaning configurations ({sd, iqr, if} detection
// x {mean, median, mode} repair) x three models.
//
// Thin view over the suite scheduler's "tables_outliers" unit (scope and
// paper references live in src/sched/suite_spec.cc; tools/run_suite runs
// the same unit as part of the whole grid, sharing its cached cells).

#include "bench/bench_util.h"

int main() { return fairclean::bench::RunTableBench("tables_outliers"); }
