#ifndef FAIRCLEAN_BENCH_BENCH_UTIL_H_
#define FAIRCLEAN_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>

#include "core/runner.h"
#include "datasets/generator.h"
#include "exec/study_driver.h"
#include "sched/suite_runner.h"
#include "sched/suite_spec.h"

namespace fairclean {
namespace bench {

// The benches are thin views over the suite scheduler (src/sched): the
// experiment scopes, paper reference tables, aggregation, and run loop all
// live there now, shared with tools/run_suite. These aliases keep the
// bench-facing names stable.
using sched::MislabelScope;
using sched::MissingScope;
using sched::OutlierScope;
using sched::PairSpec;
using sched::PaperTable;
using sched::StudyScope;

using sched::AggregateImpactTable;
using sched::PrintTableWithReference;
using sched::ScopeResults;

/// Benchmark-wide options are the suite scheduler's options.
using BenchOptions = sched::SuiteOptions;

/// Bench-scale options from the environment (sample 3500, 16 repeats, ...),
/// resolved exactly once. Also initializes the log level (benches default
/// to info, the historical verbose output) and the FAIRCLEAN_TRACE sink.
BenchOptions BenchOptionsFromEnv();

/// Generates the named dataset with the canonical suite seed derivation
/// (deterministic across bench binaries so cached results stay valid).
Result<GeneratedDataset> BenchDataset(const std::string& name,
                                      const BenchOptions& options);

/// Runs one named unit of the paper suite (PaperSuite()) through a suite
/// scheduler: "tables_missing" / "tables_outliers" / "tables_mislabels" /
/// "table_models" / "fig1" / "fig2". Prints the unit's historical output
/// (heading, measured-vs-paper tables or disparity panels, and — for table
/// units — the run diagnostics). Returns a process exit code: 0 on
/// success, 1 on failure, 75 (EX_TEMPFAIL) when the FAIRCLEAN_TIME_BUDGET_S
/// budget was exhausted — completed work is checkpointed and re-running
/// resumes it.
int RunTableBench(const std::string& unit_name);

/// Writes machine-readable micro-benchmark results as JSON:
///   {"ops":{"<op>":<seconds>,...},"threads":N,"speedup":S}
/// Atomic write via the checksummed-IO layer's temp-file+rename path.
Status WriteBenchPerfJson(const std::string& path,
                          const std::map<std::string, double>& op_seconds,
                          size_t threads, double speedup);

}  // namespace bench
}  // namespace fairclean

#endif  // FAIRCLEAN_BENCH_BENCH_UTIL_H_
