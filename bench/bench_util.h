#ifndef FAIRCLEAN_BENCH_BENCH_UTIL_H_
#define FAIRCLEAN_BENCH_BENCH_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "core/runner.h"
#include "datasets/generator.h"
#include "exec/study_driver.h"

namespace fairclean {
namespace bench {

/// One (dataset, sensitive attribute) pair of the single-attribute
/// analysis.
struct PairSpec {
  std::string dataset;
  std::string attribute;
};

/// The exact experiment scope of one error type, derived from the paper's
/// table denominators (DESIGN.md Section 4).
struct StudyScope {
  std::string error_type;
  std::vector<PairSpec> single_pairs;
  std::vector<std::string> intersectional_datasets;

  /// Distinct dataset names touched by this scope.
  std::vector<std::string> Datasets() const;
};

/// missing values: 6 single pairs (adult/folk/german), 3 intersectional.
StudyScope MissingScope();
/// outliers: 7 single pairs (adult/folk/credit/heart), 4 intersectional.
StudyScope OutlierScope();
/// mislabels: same 7 single pairs, 4 intersectional.
StudyScope MislabelScope();

/// Benchmark-wide options: study knobs plus fault-tolerance knobs of the
/// study driver (cache location, retry policy, time budget).
struct BenchOptions {
  StudyOptions study;
  /// Directory for cached experiment records ("" disables caching).
  std::string cache_dir = "fairclean_cache";
  /// Extra attempts per degenerate repeat before it is skipped.
  size_t max_retries = 2;
  /// Soft wall-clock budget in seconds (<= 0: unlimited); on exhaustion a
  /// bench checkpoints and exits with a resumable state.
  double time_budget_s = 0.0;
  /// Worker threads for the driver's repeat fan-out (0: FAIRCLEAN_THREADS,
  /// whose own default is hardware_concurrency; 1: sequential). Results are
  /// byte-identical across widths, so cached runs stay valid.
  size_t threads = 0;
};

/// Default bench options: scaled-down study (sample 3500, 16 repeats)
/// overridable via FAIRCLEAN_SAMPLE / FAIRCLEAN_REPEATS / FAIRCLEAN_FOLDS /
/// FAIRCLEAN_SEED / FAIRCLEAN_CACHE_DIR / FAIRCLEAN_MAX_RETRIES /
/// FAIRCLEAN_TIME_BUDGET_S / FAIRCLEAN_THREADS. Also initializes the log
/// level: benches default to info (the historical verbose output) unless
/// FAIRCLEAN_LOG overrides it.
BenchOptions BenchOptionsFromEnv();

/// Study-driver options corresponding to the bench options.
exec::StudyDriverOptions DriverOptions(const BenchOptions& options);

/// Generates the named dataset with the bench seed (deterministic across
/// bench binaries so cached results stay valid).
Result<GeneratedDataset> BenchDataset(const std::string& name,
                                      const BenchOptions& options);

/// Runs (or loads from cache) the cleaning experiment for one
/// (dataset, error type, model family) through a transient fault-tolerant
/// study driver: cached entries are reconstructed from the flat result
/// records (the paper's stop-and-resume facility), corrupt files are
/// quarantined and recomputed, and interrupted runs resume from the
/// per-repeat journal.
Result<CleaningExperimentResult> RunOrLoadExperiment(
    const GeneratedDataset& dataset, const std::string& error_type,
    const std::string& model, const BenchOptions& options);

/// Keyed collection of experiment results: "<dataset>/<model>".
using ScopeResults = std::map<std::string, CleaningExperimentResult>;

/// Runs the full scope (all datasets x all three model families) through
/// `driver`, which carries the time budget and diagnostics across
/// experiments.
Result<ScopeResults> RunScope(const StudyScope& scope,
                              exec::StudyDriver* driver,
                              const BenchOptions& options);

/// Convenience overload with a scope-local driver.
Result<ScopeResults> RunScope(const StudyScope& scope,
                              const BenchOptions& options);

/// Aggregates a scope's results into the paper's 3x3 impact table for one
/// (grouping, fairness metric): every (pair-or-dataset, method, model)
/// configuration contributes one cell. Alpha is Bonferroni-adjusted by the
/// number of cleaning methods.
Result<ImpactTable> AggregateImpactTable(const ScopeResults& results,
                                         const StudyScope& scope,
                                         bool intersectional,
                                         FairnessMetric metric,
                                         const BenchOptions& options);

/// Reference percentages of a paper table (row-major: fairness worse /
/// insignificant / better x accuracy worse / insignificant / better).
struct PaperTable {
  const char* label;
  double cells[3][3];
};

/// Prints measured-vs-paper tables side by side plus a qualitative shape
/// check (dominant-cell and row-ordering agreement).
void PrintTableWithReference(const ImpactTable& measured,
                             const PaperTable& reference,
                             const std::string& title);

/// Shared driver for the table benches (Tables II-XIII): arms the fault
/// injector from FAIRCLEAN_FAULTS, runs the scope through a fault-tolerant
/// study driver, prints the four measured-vs-paper tables plus the run
/// diagnostics. `references` holds the paper values in the order
/// single-PP, single-EO, intersectional-PP, intersectional-EO. Returns a
/// process exit code: 0 on success, 1 on failure, 75 (EX_TEMPFAIL) when
/// the FAIRCLEAN_TIME_BUDGET_S budget was exhausted — completed work is
/// checkpointed and re-running resumes it.
int RunTableBench(const StudyScope& scope, const PaperTable references[4],
                  const char* heading);

/// Prints the driver's run diagnostics (and, at info level, the driver
/// metric instruments) to stdout. Single implementation shared by every
/// table bench so the report format cannot drift between binaries.
void PrintRunSummary(const exec::StudyDriver& driver);

/// Reports a failed scope run to stderr — message, diagnostics, and the
/// resume hint when the time budget was exhausted — and returns the
/// process exit code (75 for a resumable deadline, 1 otherwise).
int ReportScopeFailure(const exec::StudyDriver& driver, const Status& status,
                       const std::string& cache_dir);

/// Writes machine-readable micro-benchmark results as JSON:
///   {"ops":{"<op>":<seconds>,...},"threads":N,"speedup":S}
/// Atomic write via the checksummed-IO layer's temp-file+rename path.
Status WriteBenchPerfJson(const std::string& path,
                          const std::map<std::string, double>& op_seconds,
                          size_t threads, double speedup);

}  // namespace bench
}  // namespace fairclean

#endif  // FAIRCLEAN_BENCH_BENCH_UTIL_H_
