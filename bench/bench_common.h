#ifndef FAIRCLEAN_BENCH_BENCH_COMMON_H_
#define FAIRCLEAN_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairclean {
namespace bench {

/// Order statistics of one benchmark's per-iteration wall-clock samples,
/// in seconds.
struct BenchStats {
  size_t iters = 0;
  double median = 0.0;  ///< p50 (midpoint average for even sample counts).
  double p95 = 0.0;     ///< nearest-rank p95 (the max for small samples).
};

/// Sorts `samples` and reduces them to {iters, median, p95}. Zero samples
/// yield all-zero stats.
BenchStats StatsFromSamples(std::vector<double> samples);

/// Runs one benchmark body in a forked child and returns the order
/// statistics of its per-iteration wall-clock times.
///
/// The child calls `make_body()` once (untimed setup: synthesize data,
/// encode features, ...), times `iters` calls of the returned closure,
/// streams the raw seconds back over a pipe and _exit(0)s. Process
/// isolation is the point: each sample starts from a cold process (no
/// warmed allocator or shared thread pool from a previous case), and a
/// body that spawns its own pools or aborts cannot poison the parent or
/// the remaining cases.
///
/// Fork safety: call only while the parent is still single-threaded —
/// i.e. before google-benchmark or any ThreadPool fan-out runs in the
/// parent process.
Result<BenchStats> RunForkedBench(
    const std::string& label, size_t iters,
    const std::function<std::function<void()>()>& make_body);

/// Writes the enriched kernel-bench JSON:
///   {"ops":{"<op>":<median-or-ratio>,...},
///    "p95":{"<op>":<seconds>,...},
///    "iters":{"<op>":<count>,...},
///    "threads":N,"speedup":S}
/// "ops" keeps the historical key set (medians for timed ops, plus the
/// derived *_speedup ratios); "p95"/"iters" carry the order statistics for
/// the timed ops only. Atomic write via the checksummed-IO temp+rename
/// path.
Status WriteKernelStatsJson(const std::string& path,
                            const std::map<std::string, double>& ops,
                            const std::map<std::string, double>& p95,
                            const std::map<std::string, size_t>& iters,
                            size_t threads, double speedup);

}  // namespace bench
}  // namespace fairclean

#endif  // FAIRCLEAN_BENCH_BENCH_COMMON_H_
