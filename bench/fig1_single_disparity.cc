// Reproduces Figure 1: single-attribute analysis of disparate proportions
// of tuples flagged by the five error-detection strategies, per dataset and
// sensitive attribute, with G^2 significance at p = .05.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/disparity.h"

namespace {

using namespace fairclean;        // NOLINT
using namespace fairclean::bench; // NOLINT

int Run() {
  BenchOptions options = BenchOptionsFromEnv();
  std::printf(
      "== Figure 1: single-attribute disparity of error-detector flag rates "
      "==\n\n");

  size_t missing_cases = 0;
  size_t missing_dis_higher = 0;
  size_t significant_rows = 0;
  size_t total_rows = 0;
  size_t adult_significant = 0;

  for (const std::string& name : AllDatasetNames()) {
    Result<GeneratedDataset> dataset = BenchDataset(name, options);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset %s failed: %s\n", name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    DisparityOptions disparity_options;
    Rng rng(options.study.seed + 17);
    Result<std::vector<DisparityRow>> rows = AnalyzeDisparities(
        *dataset, /*intersectional=*/false, disparity_options, &rng);
    if (!rows.ok()) {
      std::fprintf(stderr, "analysis failed for %s: %s\n", name.c_str(),
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", FormatDisparityTable(*rows).c_str());
    std::printf("\n");

    for (const DisparityRow& row : *rows) {
      ++total_rows;
      if (row.significant) {
        ++significant_rows;
        if (row.dataset == "adult") ++adult_significant;
      }
      if (row.detector == "missing_values") {
        ++missing_cases;
        if (row.DisadvantagedFraction() > row.PrivilegedFraction()) {
          ++missing_dis_higher;
        }
      }
    }
  }

  std::printf("== summary vs paper ==\n");
  std::printf(
      "missing values flagged more often for the disadvantaged group: "
      "%zu of %zu dataset/attribute cases (paper: 4 of 6)\n",
      missing_dis_higher, missing_cases);
  std::printf(
      "significant disparities: %zu of %zu detector/group rows overall\n",
      significant_rows, total_rows);
  std::printf(
      "adult rows with significant disparity: %zu of 10 (paper: adult is "
      "the only dataset where ALL five detectors flag significant "
      "disparities)\n",
      adult_significant);
  return 0;
}

}  // namespace

int main() { return Run(); }
