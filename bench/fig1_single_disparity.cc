// Reproduces Figure 1: single-attribute analysis of disparate proportions
// of tuples flagged by the five error-detection strategies, per dataset and
// sensitive attribute, with G^2 significance at p = .05.
//
// Thin view over the suite scheduler's "fig1" unit; the per-dataset
// disparity analyses are content-addressed artifacts shared with
// tools/run_suite.

#include "bench/bench_util.h"

int main() { return fairclean::bench::RunTableBench("fig1"); }
